package stats

import (
	"fmt"
	"math"
)

// RayleighTest tests the null hypothesis that an angular sample is uniform
// on the circle against a unimodal alternative. It returns the test
// statistic z = n·R̄² and an approximate p-value (Mardia & Jupp eq. 6.3.4,
// accurate for n ≳ 10). Small p rejects uniformity — i.e., the sample is
// directional. The dataset synthesizers use it to verify cluster structure.
func RayleighTest(angles []float64) (z, p float64) {
	if len(angles) < 2 {
		panic("stats: Rayleigh test needs at least 2 samples")
	}
	n := float64(len(angles))
	r := Circular(angles).Resultant
	z = n * r * r
	// Second-order correction to the exp(−z) approximation.
	p = math.Exp(-z) * (1 + (2*z-z*z)/(4*n) - (24*z-132*z*z+76*z*z*z-9*z*z*z*z)/(288*n*n))
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return z, p
}

// CircularCircularCorrelation computes the Fisher–Lee correlation
// coefficient between two angular samples:
//
//	ρ = Σ sin(a_i − ā) sin(b_i − b̄) / √(Σ sin²(a_i − ā) · Σ sin²(b_i − b̄))
//
// where ā, b̄ are the circular means. ρ ∈ [−1, 1]; 0 for independent
// directions. Used to verify that the gesture synthesizer's features are
// angularly associated within classes.
func CircularCircularCorrelation(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) < 3 {
		panic("stats: circular-circular correlation needs at least 3 samples")
	}
	am := Circular(a).Mean
	bm := Circular(b).Mean
	if math.IsNaN(am) || math.IsNaN(bm) {
		return 0 // undefined mean direction ⇒ no measurable association
	}
	var num, da, db float64
	for i := range a {
		sa := math.Sin(a[i] - am)
		sb := math.Sin(b[i] - bm)
		num += sa * sb
		da += sa * sa
		db += sb * sb
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on the sorted copy. Used by reporting code for robust
// summaries.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	insertionSort(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// insertionSort keeps stats dependency-free of package sort for one call
// site and is fast for the short slices reporting uses; it falls back to
// a simple quicksort above a threshold.
func insertionSort(xs []float64) {
	if len(xs) > 64 {
		quicksort(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func quicksort(xs []float64) {
	if len(xs) < 2 {
		return
	}
	if len(xs) <= 64 {
		insertionSort(xs)
		return
	}
	pivot := xs[len(xs)/2]
	lo, hi := 0, len(xs)-1
	for lo <= hi {
		for xs[lo] < pivot {
			lo++
		}
		for xs[hi] > pivot {
			hi--
		}
		if lo <= hi {
			xs[lo], xs[hi] = xs[hi], xs[lo]
			lo++
			hi--
		}
	}
	quicksort(xs[:hi+1])
	quicksort(xs[lo:])
}
