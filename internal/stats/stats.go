// Package stats provides the evaluation metrics used by the experiment
// harness (accuracy, confusion matrices, squared-error measures, normalized
// errors as defined in the paper's Section 6.3) plus the small directional-
// statistics toolkit (circular mean, resultant length, circular variance,
// the paper's circular distance ρ, and circular–linear correlation) that the
// dataset synthesizers and their tests rely on.
package stats

import (
	"fmt"
	"math"
)

// ---------------------------------------------------------------------------
// Linear metrics
// ---------------------------------------------------------------------------

// Accuracy returns the fraction of positions where pred equals truth. It
// panics on length mismatch or empty input: those are harness bugs.
func Accuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("stats: prediction/truth length mismatch %d vs %d", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		panic("stats: accuracy of empty slice")
	}
	hits := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// MSE returns the mean squared error between predictions and truth.
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("stats: prediction/truth length mismatch %d vs %d", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		panic("stats: MSE of empty slice")
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("stats: prediction/truth length mismatch %d vs %d", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		panic("stats: MAE of empty slice")
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// RMSE returns the root mean squared error.
func RMSE(pred, truth []float64) float64 { return math.Sqrt(MSE(pred, truth)) }

// NormalizedAccuracyError implements the paper's Figure 8 metric
// (1−α)/(1−ᾱ): the error rate of a model normalized by the error rate of
// the reference model (random-hypervectors in the paper). A reference
// accuracy of exactly 1 would divide by zero; the harness never normalizes
// against a perfect reference, so that panics.
func NormalizedAccuracyError(acc, refAcc float64) float64 {
	if refAcc >= 1 {
		panic("stats: normalized accuracy error against a perfect reference")
	}
	return (1 - acc) / (1 - refAcc)
}

// NormalizedMSE returns mse/refMSE, the Figure 7/8 regression metric.
func NormalizedMSE(mse, refMSE float64) float64 {
	if refMSE <= 0 {
		panic("stats: normalized MSE against non-positive reference")
	}
	return mse / refMSE
}

// Mean returns the arithmetic mean of xs; it panics on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// ---------------------------------------------------------------------------
// Confusion matrix
// ---------------------------------------------------------------------------

// Confusion is a k×k confusion matrix: rows are true classes, columns are
// predicted classes.
type Confusion struct {
	k      int
	counts []int
}

// NewConfusion returns an empty confusion matrix over k classes.
func NewConfusion(k int) *Confusion {
	if k <= 0 {
		panic(fmt.Sprintf("stats: confusion over %d classes", k))
	}
	return &Confusion{k: k, counts: make([]int, k*k)}
}

// Observe records a (truth, prediction) pair.
func (c *Confusion) Observe(truth, pred int) {
	if truth < 0 || truth >= c.k || pred < 0 || pred >= c.k {
		panic(fmt.Sprintf("stats: class out of range: truth=%d pred=%d k=%d", truth, pred, c.k))
	}
	c.counts[truth*c.k+pred]++
}

// At returns the count of samples with the given truth predicted as pred.
func (c *Confusion) At(truth, pred int) int { return c.counts[truth*c.k+pred] }

// Total returns the number of observed samples.
func (c *Confusion) Total() int {
	t := 0
	for _, n := range c.counts {
		t += n
	}
	return t
}

// Accuracy returns the trace ratio of the matrix; 0 when empty.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	diag := 0
	for i := 0; i < c.k; i++ {
		diag += c.counts[i*c.k+i]
	}
	return float64(diag) / float64(total)
}

// PerClassRecall returns recall per true class (NaN for unseen classes).
func (c *Confusion) PerClassRecall() []float64 {
	out := make([]float64, c.k)
	for i := 0; i < c.k; i++ {
		row := 0
		for j := 0; j < c.k; j++ {
			row += c.counts[i*c.k+j]
		}
		if row == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = float64(c.counts[i*c.k+i]) / float64(row)
	}
	return out
}

// ---------------------------------------------------------------------------
// Directional statistics
// ---------------------------------------------------------------------------

// CircularDistance implements the paper's ρ(α, β) = (1 − cos(α−β))/2, a
// normalized distance in [0,1] between two angles; 0 for identical
// directions, 1 for opposite directions.
func CircularDistance(alpha, beta float64) float64 {
	return (1 - math.Cos(alpha-beta)) / 2
}

// ArcDistance returns the normalized arc-length distance in [0, 1]:
// min(|α−β| mod 2π, 2π − |α−β| mod 2π) / π. This is the profile the
// two-phase circular construction actually realizes (see DESIGN.md §6).
func ArcDistance(alpha, beta float64) float64 {
	d := math.Mod(math.Abs(alpha-beta), 2*math.Pi)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d / math.Pi
}

// CircularSummary holds the first trigonometric moment of an angle sample.
type CircularSummary struct {
	Mean      float64 // mean direction in [0, 2π); NaN when the resultant is 0
	Resultant float64 // mean resultant length R̄ ∈ [0,1]
	Variance  float64 // circular variance 1 − R̄
	N         int
}

// Circular computes the sample circular mean, resultant length and circular
// variance of the given angles (radians).
func Circular(angles []float64) CircularSummary {
	if len(angles) == 0 {
		panic("stats: circular summary of empty sample")
	}
	var c, s float64
	for _, a := range angles {
		c += math.Cos(a)
		s += math.Sin(a)
	}
	n := float64(len(angles))
	c /= n
	s /= n
	r := math.Hypot(c, s)
	mean := math.NaN()
	// Treat a numerically vanishing resultant as zero: the mean direction of
	// a balanced (e.g. antipodal) sample is undefined.
	if r < 1e-12 {
		r = 0
	}
	if r > 0 {
		mean = math.Atan2(s, c)
		if mean < 0 {
			mean += 2 * math.Pi
		}
	}
	return CircularSummary{Mean: mean, Resultant: r, Variance: 1 - r, N: len(angles)}
}

// CircularLinearCorrelation computes the squared correlation R² between a
// circular predictor θ and a linear response x (Mardia's r², via the
// correlations of x with cos θ and sin θ). It is the statistic behind the
// paper's claim that day-of-year and hour-of-day are "circular-linear
// correlated" with temperature; the Beijing synthesizer's tests assert it
// is high.
func CircularLinearCorrelation(theta, x []float64) float64 {
	if len(theta) != len(x) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(theta), len(x)))
	}
	if len(theta) < 3 {
		panic("stats: circular-linear correlation needs at least 3 samples")
	}
	cs := make([]float64, len(theta))
	sn := make([]float64, len(theta))
	for i, t := range theta {
		cs[i] = math.Cos(t)
		sn[i] = math.Sin(t)
	}
	rxc := pearson(x, cs)
	rxs := pearson(x, sn)
	rcs := pearson(cs, sn)
	den := 1 - rcs*rcs
	if den == 0 {
		return 0
	}
	r2 := (rxc*rxc + rxs*rxs - 2*rxc*rxs*rcs) / den
	if r2 < 0 {
		return 0
	}
	if r2 > 1 {
		return 1
	}
	return r2
}

// pearson returns the Pearson correlation of a and b, 0 when degenerate.
func pearson(a, b []float64) float64 {
	ma, mb := Mean(a), Mean(b)
	var num, da, db float64
	for i := range a {
		xa, xb := a[i]-ma, b[i]-mb
		num += xa * xb
		da += xa * xa
		db += xb * xb
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}
