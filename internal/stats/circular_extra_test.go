package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hdcirc/internal/rng"
)

func TestRayleighRejectsClustered(t *testing.T) {
	// Tight cluster → huge z, tiny p.
	angles := make([]float64, 50)
	r := rng.New(1)
	for i := range angles {
		angles[i] = 1.0 + 0.05*r.NormFloat64()
	}
	z, p := RayleighTest(angles)
	if z < 10 {
		t.Errorf("clustered z = %v, want large", z)
	}
	if p > 1e-6 {
		t.Errorf("clustered p = %v, want ≈ 0", p)
	}
}

func TestRayleighAcceptsUniform(t *testing.T) {
	r := rng.New(2)
	angles := make([]float64, 200)
	for i := range angles {
		angles[i] = r.Float64() * 2 * math.Pi
	}
	_, p := RayleighTest(angles)
	if p < 0.01 {
		t.Errorf("uniform sample rejected with p = %v", p)
	}
}

func TestRayleighPanicsTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=1 did not panic")
		}
	}()
	RayleighTest([]float64{1})
}

func TestCircularCircularCorrelationPositive(t *testing.T) {
	// b = a + constant offset → perfect positive association.
	r := rng.New(3)
	n := 300
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.Float64() * 2 * math.Pi
		b[i] = math.Mod(a[i]+0.7, 2*math.Pi)
	}
	if rho := CircularCircularCorrelation(a, b); rho < 0.95 {
		t.Errorf("offset association ρ = %v, want ≈ 1", rho)
	}
}

func TestCircularCircularCorrelationNegative(t *testing.T) {
	// b = −a → perfect negative association.
	r := rng.New(4)
	n := 300
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.Float64() * 2 * math.Pi
		b[i] = math.Mod(2*math.Pi-a[i], 2*math.Pi)
	}
	if rho := CircularCircularCorrelation(a, b); rho > -0.95 {
		t.Errorf("reflected association ρ = %v, want ≈ −1", rho)
	}
}

func TestCircularCircularCorrelationIndependent(t *testing.T) {
	r := rng.New(5)
	n := 2000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		// Concentrated samples so circular means are well-defined.
		a[i] = 1 + 0.5*r.NormFloat64()
		b[i] = 4 + 0.5*r.NormFloat64()
	}
	if rho := CircularCircularCorrelation(a, b); math.Abs(rho) > 0.08 {
		t.Errorf("independent ρ = %v, want ≈ 0", rho)
	}
}

func TestCircularCircularCorrelationPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch did not panic")
			}
		}()
		CircularCircularCorrelation([]float64{1, 2, 3}, []float64{1, 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("tiny sample did not panic")
			}
		}()
		CircularCircularCorrelation([]float64{1, 2}, []float64{1, 2})
	}()
}

func TestQuantileBasics(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Errorf("q1 = %v", got)
	}
	med := Quantile(xs, 0.5)
	if med < 3 || med > 4 {
		t.Errorf("median = %v, want in [3,4]", med)
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty did not panic")
			}
		}()
		Quantile(nil, 0.5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("q>1 did not panic")
			}
		}()
		Quantile([]float64{1}, 1.5)
	}()
}

func TestQuickSortMatchesStdlib(t *testing.T) {
	f := func(raw []float64) bool {
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		mine := make([]float64, len(raw))
		copy(mine, raw)
		quicksort(mine)
		ref := make([]float64, len(raw))
		copy(ref, raw)
		sort.Float64s(ref)
		for i := range mine {
			if mine[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuicksortLargeSlice(t *testing.T) {
	r := rng.New(6)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64()
	}
	q := Quantile(xs, 0.5)
	if q < 0.4 || q > 0.6 {
		t.Errorf("median of uniforms = %v, want ≈ 0.5", q)
	}
}
