// Package rng provides small, fast, deterministic random number streams for
// the whole library. Every experiment in the repository is reproducible
// bit-for-bit from a single root seed: components derive independent
// substreams by name, so adding a new consumer never perturbs the draws an
// existing consumer sees.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through
// splitmix64, the standard pairing: splitmix64 guarantees well-distributed
// state even for adjacent integer seeds, and xoshiro256** passes stringent
// statistical test batteries while needing four uint64 of state.
package rng

import "math"

// splitmix64 advances the seed and returns the next output; used only for
// seeding and for substream derivation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a single xoshiro256** generator. It is NOT safe for concurrent
// use; derive one Stream per goroutine with Split or Sub.
type Stream struct {
	s         [4]uint64
	spare     float64 // cached second Box–Muller variate
	haveSpare bool
}

// New returns a Stream seeded from the given 64-bit seed via splitmix64.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitmix64(&sm)
	}
	// xoshiro's all-zero state is absorbing; splitmix64 cannot emit four
	// zeros in a row, but keep the guard for hand-constructed states.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0,1) with 53 random bits.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics when n <= 0. Uses
// Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Bool returns a fair coin flip.
func (r *Stream) Bool() bool { return r.Uint64()>>63 == 1 }

// NormFloat64 returns a standard normal variate using the Box–Muller
// transform. One of the two generated variates is cached.
func (r *Stream) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.haveSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// Perm returns a uniformly random permutation of [0,n) via Fisher–Yates.
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements in place using the provided swap.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives a new independent Stream from r, advancing r. Useful when a
// consumer needs many parallel streams of unspecified count.
func (r *Stream) Split() *Stream {
	seed := r.Uint64() ^ 0xd1342543de82ef95
	return New(seed)
}

// Sub derives a named substream from a root seed without consuming state:
// Sub(seed, "datasets/beijing") always yields the same stream regardless of
// what other components were created before it. The label is folded with
// FNV-1a into the splitmix64 seeding chain.
func Sub(seed uint64, label string) *Stream {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	sm := seed
	mixed := splitmix64(&sm) ^ h
	return New(mixed)
}
