package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from different seeds", same)
	}
}

func TestAdjacentSeedsUncorrelated(t *testing.T) {
	// splitmix64 seeding should decorrelate seeds 0 and 1: the fraction of
	// equal bits across draws should be near 1/2.
	a, b := New(0), New(1)
	matches, total := 0, 0
	for i := 0; i < 1000; i++ {
		x, y := a.Uint64(), b.Uint64()
		for k := 0; k < 64; k++ {
			if (x>>k)&1 == (y>>k)&1 {
				matches++
			}
			total++
		}
	}
	frac := float64(matches) / float64(total)
	if frac < 0.49 || frac > 0.51 {
		t.Errorf("adjacent-seed bit agreement %v not ≈ 0.5", frac)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(8)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestIntnOne(t *testing.T) {
	r := New(10)
	for i := 0; i < 100; i++ {
		if r.Intn(1) != 0 {
			t.Fatal("Intn(1) != 0")
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v not ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v not ≈ 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(13)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("first element %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(14)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(15)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("first draws of split streams collide")
	}
}

func TestSubDeterministicAndLabelSensitive(t *testing.T) {
	a1 := Sub(99, "alpha")
	a2 := Sub(99, "alpha")
	b := Sub(99, "beta")
	c := Sub(100, "alpha")
	x := a1.Uint64()
	if x != a2.Uint64() {
		t.Error("Sub not deterministic")
	}
	if x == b.Uint64() {
		t.Error("Sub ignores label")
	}
	if x == c.Uint64() {
		t.Error("Sub ignores seed")
	}
}

func TestBoolRoughlyFair(t *testing.T) {
	r := New(16)
	ones := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			ones++
		}
	}
	frac := float64(ones) / float64(n)
	if frac < 0.49 || frac > 0.51 {
		t.Errorf("Bool fraction %v not ≈ 0.5", frac)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint32, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		r := New(uint64(seed))
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
