package loadgen

import (
	"math"
	"math/bits"
	"time"
)

// Log-linear latency histogram in the HdrHistogram tradition: each power
// of two is split into 32 linear sub-buckets, bounding the relative
// quantile error at 1/32 (~3%) across the full int64-nanosecond range
// with a fixed 15 KiB footprint and O(1) recording. Workers record into
// private histograms and Merge at the end, so the hot path takes no lock.

const (
	subBits    = 5
	subBuckets = 1 << subBits // linear sub-buckets per power of two
	// Values below subBuckets get one exact bucket each (block 0); every
	// higher power of two is one block of subBuckets buckets, up to the
	// top bit of an int64.
	numBuckets = ((63 - subBits) << subBits) + subBuckets
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // position of the top set bit, >= subBits
	return ((k - subBits + 1) << subBits) + int((v>>uint(k-subBits))&(subBuckets-1))
}

// bucketUpper returns the largest value that maps to bucket b — the
// conservative (pessimistic) quantile estimate for the bucket.
func bucketUpper(b int) int64 {
	block := b >> subBits
	sub := int64(b & (subBuckets - 1))
	if block == 0 {
		return sub
	}
	low := (subBuckets + sub) << uint(block-1)
	return low + (int64(1) << uint(block-1)) - 1
}

// Hist is a fixed-size log-linear histogram of durations. The zero value
// is NOT ready; use NewHist. A Hist is not safe for concurrent use —
// record per goroutine and Merge.
type Hist struct {
	counts [numBuckets]uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{min: math.MaxInt64} }

// Record adds one observation. Negative durations clamp to zero.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for b, c := range o.counts {
		h.counts[b] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.n > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.n }

// Min returns the exact smallest observation (0 when empty).
func (h *Hist) Min() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the exact largest observation (0 when empty).
func (h *Hist) Max() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.n))
}

// Quantile returns the q-quantile (q in [0, 1]) as the upper edge of the
// bucket holding the ceil(q·n)-th observation — within 1/32 of the true
// value, never below it within a bucket. Quantile(1) is the exact max.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for b := range h.counts {
		cum += h.counts[b]
		if cum >= target {
			u := bucketUpper(b)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return time.Duration(u)
		}
	}
	return time.Duration(h.max)
}
