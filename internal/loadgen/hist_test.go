package loadgen

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose range contains it, and
	// bucket indexes must be monotone in the value.
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1<<62 - 1}
	prev := -1
	for _, v := range vals {
		b := bucketOf(v)
		if b <= prev {
			t.Fatalf("bucketOf not monotone: v=%d b=%d prev=%d", v, b, prev)
		}
		prev = b
		if u := bucketUpper(b); u < v {
			t.Errorf("bucketUpper(%d)=%d below value %d", b, u, v)
		}
		if b >= numBuckets {
			t.Fatalf("bucketOf(%d)=%d out of range %d", v, b, numBuckets)
		}
	}
	// Relative bucket width stays within the design bound of 1/32.
	for _, v := range []int64{100, 10_000, 1_000_000, 123_456_789} {
		b := bucketOf(v)
		width := bucketUpper(b) - bucketUpper(b-1)
		if rel := float64(width) / float64(v); rel > 1.0/subBuckets+1e-9 {
			t.Errorf("bucket width at %d is %.4f relative, want <= 1/%d", v, rel, subBuckets)
		}
	}
}

func TestHistQuantilesAgainstExact(t *testing.T) {
	// Log-normal-ish latencies: the shape load tests actually see.
	r := rand.New(rand.NewSource(42))
	h := NewHist()
	var exact []float64
	for i := 0; i < 200_000; i++ {
		v := time.Duration(100_000 * (1 + r.ExpFloat64()*10)) // 100µs base, heavy tail
		h.Record(v)
		exact = append(exact, float64(v))
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := exact[int(q*float64(len(exact)))]
		got := float64(h.Quantile(q))
		if got < want*(1-1.0/subBuckets) || got > want*(1+2.0/subBuckets) {
			t.Errorf("q=%v: got %v want ~%v (outside log-linear error bound)", q, time.Duration(got), time.Duration(want))
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("Quantile(1)=%v != Max()=%v", h.Quantile(1), h.Max())
	}
	if h.Quantile(0) != h.Min() {
		t.Errorf("Quantile(0)=%v != Min()=%v", h.Quantile(0), h.Min())
	}
}

func TestHistMerge(t *testing.T) {
	a, b, all := NewHist(), NewHist(), NewHist()
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Microsecond
		all.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() || a.Mean() != all.Mean() {
		t.Fatalf("merge mismatch: count %d/%d min %v/%v max %v/%v mean %v/%v",
			a.Count(), all.Count(), a.Min(), all.Min(), a.Max(), all.Max(), a.Mean(), all.Mean())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q=%v: merged %v != direct %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestHistEmptyAndNegative(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Record(-5 * time.Millisecond)
	if h.Min() != 0 || h.Count() != 1 {
		t.Errorf("negative durations must clamp to zero, got min %v", h.Min())
	}
}
