// Package loadgen is the measurement core of cmd/hdcload: open- and
// closed-loop request scheduling with coordinated-omission-safe latency
// accounting and log-linear (HDR-style) histograms.
//
// Closed loop models a fixed fleet of synchronous clients: Workers
// goroutines each issue the next request the moment the previous one
// returns, so offered load adapts to server speed and the loop measures
// capacity. Open loop models independent arrivals: requests are scheduled
// at a fixed Rate regardless of how the server is doing, and each
// latency is measured from the request's SCHEDULED arrival time, not from
// when a worker got around to sending it. That distinction is what makes
// the numbers coordinated-omission-safe — a stalled server inflates the
// recorded latencies of every arrival queued behind the stall instead of
// silently suppressing them (Tene's "coordinated omission").
//
// The package is transport-agnostic: callers hand Run an op closure and
// an error classifier, so the same engine drives HTTP scenarios in
// cmd/hdcload and in-process fixtures in tests.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the scheduling discipline.
type Mode string

const (
	// ModeClosed runs Workers synchronous request loops.
	ModeClosed Mode = "closed"
	// ModeOpen schedules arrivals at Rate per second and measures from
	// scheduled arrival time.
	ModeOpen Mode = "open"
)

// Config parameterizes one load run.
type Config struct {
	// Mode is the scheduling discipline; empty means ModeClosed.
	Mode Mode
	// Workers is the concurrency: the fleet size in closed loop, the
	// maximum in-flight requests in open loop (arrivals beyond it queue,
	// and their queueing delay is charged to latency). 0 = GOMAXPROCS.
	Workers int
	// Rate is the open-loop arrival rate per second. Ignored in closed
	// loop; required > 0 in open loop.
	Rate float64
	// Duration is the scheduling window. Closed loop stops issuing at the
	// deadline; open loop schedules Rate×Duration arrivals and then
	// drains them all (under the caller's ctx) even if the server has
	// fallen behind — dropping the backlog would be coordinated omission.
	Duration time.Duration
	// Classify maps an op error to its error-class label ("429",
	// "transport", ...) for the per-class breakdown. nil classifies every
	// error as "error".
	Classify func(error) string
}

// Result is the outcome of one load run.
type Result struct {
	// Mode, WorkersRequested and Rate echo the effective Config.
	Mode             Mode
	WorkersRequested int
	Rate             float64
	// WorkersEffective is the peak number of ops observed genuinely
	// in flight — the parallelism achieved, as opposed to asked for.
	WorkersEffective int
	// Elapsed is wall-clock time from first schedule to last completion.
	Elapsed time.Duration
	// Requests counts completed ops: successes plus classified errors.
	Requests uint64
	// Errors counts completed ops per error class.
	Errors map[string]uint64
	// Hist holds success latencies only — error paths (a 429 turnaround,
	// a refused connection) have different shapes and would pollute the
	// SLO quantiles.
	Hist *Hist
}

// Success returns the number of ops that completed without error.
func (r *Result) Success() uint64 { return r.Hist.Count() }

// ErrorCount returns the number of ops that completed with an error.
func (r *Result) ErrorCount() uint64 { return r.Requests - r.Success() }

// Throughput returns successful ops per second over the elapsed window.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Success()) / r.Elapsed.Seconds()
}

// gauge tracks current and peak concurrency.
type gauge struct {
	cur  atomic.Int64
	peak atomic.Int64
}

func (g *gauge) enter() {
	c := g.cur.Add(1)
	for {
		p := g.peak.Load()
		if c <= p || g.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

func (g *gauge) exit() { g.cur.Add(-1) }

// workerState is one worker's private tally; merged after the run so the
// hot path is lock-free.
type workerState struct {
	hist *Hist
	errs map[string]uint64
	n    uint64
}

func newWorkerState() *workerState {
	return &workerState{hist: NewHist(), errs: make(map[string]uint64)}
}

func (st *workerState) record(lat time.Duration, err error, classify func(error) string) {
	st.n++
	if err == nil {
		st.hist.Record(lat)
		return
	}
	st.errs[classify(err)]++
}

// Run executes one load run of op under cfg. It returns when every
// scheduled request has completed or ctx is canceled; a cancellation
// mid-run returns the partial Result alongside ctx's error.
func Run(ctx context.Context, cfg Config, op func(context.Context) error) (*Result, error) {
	if cfg.Mode == "" {
		cfg.Mode = ModeClosed
	}
	if cfg.Mode != ModeClosed && cfg.Mode != ModeOpen {
		return nil, fmt.Errorf("loadgen: unknown mode %q", cfg.Mode)
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: Duration must be positive")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Mode == ModeOpen && cfg.Rate <= 0 {
		return nil, errors.New("loadgen: open loop requires Rate > 0")
	}
	classify := cfg.Classify
	if classify == nil {
		classify = func(error) string { return "error" }
	}

	states := make([]*workerState, cfg.Workers)
	for i := range states {
		states[i] = newWorkerState()
	}
	var g gauge
	start := time.Now()
	var err error
	if cfg.Mode == ModeClosed {
		err = runClosed(ctx, cfg, op, states, &g, classify)
	} else {
		err = runOpen(ctx, cfg, op, states, &g, classify, start)
	}
	res := &Result{
		Mode:             cfg.Mode,
		WorkersRequested: cfg.Workers,
		Rate:             cfg.Rate,
		WorkersEffective: int(g.peak.Load()),
		Elapsed:          time.Since(start),
		Errors:           make(map[string]uint64),
		Hist:             NewHist(),
	}
	for _, st := range states {
		res.Requests += st.n
		res.Hist.Merge(st.hist)
		for class, c := range st.errs {
			res.Errors[class] += c
		}
	}
	return res, err
}

// runClosed drives Workers synchronous request loops until the deadline.
func runClosed(ctx context.Context, cfg Config, op func(context.Context) error, states []*workerState, g *gauge, classify func(error) string) error {
	dctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	var wg sync.WaitGroup
	for _, st := range states {
		wg.Add(1)
		go func(st *workerState) {
			defer wg.Done()
			for dctx.Err() == nil {
				g.enter()
				t0 := time.Now()
				err := op(dctx)
				lat := time.Since(t0)
				g.exit()
				if err != nil && dctx.Err() != nil {
					// The run deadline aborted this op mid-flight; it is
					// an artifact of stopping, not a workload error.
					return
				}
				st.record(lat, err, classify)
			}
		}(st)
	}
	wg.Wait()
	return ctx.Err()
}

// runOpen schedules Rate×Duration arrivals on a fixed timetable and
// charges each request's latency from its scheduled arrival time. The
// arrival queue is buffered for the entire schedule so the dispatcher
// NEVER blocks on slow workers — backpressure shows up as queueing delay
// in the latency distribution, which is the whole point.
func runOpen(ctx context.Context, cfg Config, op func(context.Context) error, states []*workerState, g *gauge, classify func(error) string, start time.Time) error {
	total := int(cfg.Rate * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	arrivals := make(chan time.Time, total)
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	go func() {
		defer close(arrivals)
		for i := 0; i < total; i++ {
			t := start.Add(time.Duration(float64(i) / cfg.Rate * float64(time.Second)))
			if d := time.Until(t); d > 0 {
				timer.Reset(d)
				select {
				case <-timer.C:
				case <-ctx.Done():
					return
				}
			}
			arrivals <- t
		}
	}()

	var wg sync.WaitGroup
	for _, st := range states {
		wg.Add(1)
		go func(st *workerState) {
			defer wg.Done()
			for t := range arrivals {
				if ctx.Err() != nil {
					return
				}
				g.enter()
				err := op(ctx)
				lat := time.Since(t) // from scheduled arrival: CO-safe
				g.exit()
				if err != nil && ctx.Err() != nil {
					return
				}
				st.record(lat, err, classify)
			}
		}(st)
	}
	wg.Wait()
	return ctx.Err()
}
