package loadgen

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	nop := func(context.Context) error { return nil }
	if _, err := Run(ctx, Config{Duration: 0}, nop); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Run(ctx, Config{Mode: ModeOpen, Duration: time.Second}, nop); err == nil {
		t.Error("open loop without rate accepted")
	}
	if _, err := Run(ctx, Config{Mode: "warp", Duration: time.Second}, nop); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestClosedLoopMeasuresServiceTime(t *testing.T) {
	var calls atomic.Int64
	res, err := Run(context.Background(), Config{
		Mode:     ModeClosed,
		Workers:  4,
		Duration: 200 * time.Millisecond,
	}, func(context.Context) error {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Requests != uint64(calls.Load()) {
		t.Fatalf("requests %d, op calls %d", res.Requests, calls.Load())
	}
	if res.Success() != res.Requests || res.ErrorCount() != 0 {
		t.Fatalf("unexpected errors: %v", res.Errors)
	}
	// 4 workers × ~1ms service time: p50 near 1ms, nowhere near 10ms.
	if p50 := res.Hist.Quantile(0.5); p50 < 500*time.Microsecond || p50 > 10*time.Millisecond {
		t.Errorf("closed-loop p50 %v, want ~1ms", p50)
	}
	if res.WorkersRequested != 4 {
		t.Errorf("WorkersRequested = %d", res.WorkersRequested)
	}
	if res.WorkersEffective < 2 || res.WorkersEffective > 4 {
		t.Errorf("WorkersEffective = %d, want 2..4 for a 4-worker fleet of sleepers", res.WorkersEffective)
	}
	if res.Throughput() <= 0 {
		t.Error("zero throughput")
	}
}

func TestOpenLoopCompletesSchedule(t *testing.T) {
	const rate, dur = 500.0, 400 * time.Millisecond
	res, err := Run(context.Background(), Config{
		Mode:     ModeOpen,
		Workers:  8,
		Rate:     rate,
		Duration: dur,
	}, func(context.Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(rate * dur.Seconds())
	if res.Requests != want {
		t.Fatalf("open loop completed %d of %d scheduled arrivals", res.Requests, want)
	}
}

func TestOpenLoopChargesCoordinatedOmission(t *testing.T) {
	// One worker, 2ms service time, arrivals every 1ms: the server is at
	// 2× capacity, so queueing delay must build up and be CHARGED to the
	// later arrivals' latencies. A coordinated-omission-blind harness
	// (measuring from send time) would report ~2ms at every quantile.
	res, err := Run(context.Background(), Config{
		Mode:     ModeOpen,
		Workers:  1,
		Rate:     1000,
		Duration: 200 * time.Millisecond,
	}, func(context.Context) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	p50, p99 := res.Hist.Quantile(0.5), res.Hist.Quantile(0.99)
	if p99 < 20*time.Millisecond {
		t.Errorf("p99 %v too low: queueing delay was not charged (coordinated omission)", p99)
	}
	// Under steadily growing queueing delay the latency quantiles are
	// linear in arrival index, so p99 ≈ 1.98×p50; demand a clear skew.
	if p99 < 3*p50/2 {
		t.Errorf("p99 %v vs p50 %v: overload should skew the tail far beyond the median", p99, p50)
	}
}

func TestErrorClassification(t *testing.T) {
	sentinel := errors.New("boom")
	var n atomic.Int64
	res, err := Run(context.Background(), Config{
		Mode:     ModeClosed,
		Workers:  2,
		Duration: 100 * time.Millisecond,
		Classify: func(err error) string {
			if errors.Is(err, sentinel) {
				return "429"
			}
			return "other"
		},
	}, func(context.Context) error {
		time.Sleep(500 * time.Microsecond)
		if n.Add(1)%3 == 0 {
			return sentinel
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors["429"] == 0 {
		t.Fatalf("classifier output missing: %v", res.Errors)
	}
	if res.Errors["other"] != 0 {
		t.Fatalf("misclassified errors: %v", res.Errors)
	}
	if res.Success()+res.Errors["429"] != res.Requests {
		t.Fatalf("accounting mismatch: %d + %d != %d", res.Success(), res.Errors["429"], res.Requests)
	}
	// Error latencies must not pollute the success histogram.
	if res.Hist.Count() != res.Success() {
		t.Fatalf("histogram holds %d samples for %d successes", res.Hist.Count(), res.Success())
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, Config{
		Mode:     ModeOpen,
		Workers:  2,
		Rate:     100,
		Duration: 10 * time.Second,
	}, func(ctx context.Context) error {
		select {
		case <-time.After(time.Millisecond):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
