package dist

import (
	"math"
	"testing"

	"hdcirc/internal/rng"
)

func TestUniformRange(t *testing.T) {
	s := rng.New(1)
	for i := 0; i < 1000; i++ {
		x := Uniform(s, -2, 5)
		if x < -2 || x >= 5 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{2 * math.Pi, 0},
		{-0.1, 2*math.Pi - 0.1},
		{3 * math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVonMisesUniformWhenKappaZero(t *testing.T) {
	s := rng.New(2)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		x := VonMises(s, 1, 0)
		if x < 0 || x >= 2*math.Pi {
			t.Fatalf("VonMises out of [0,2π): %v", x)
		}
		sum += x
	}
	mean := sum / float64(n)
	if math.Abs(mean-math.Pi) > 0.05 {
		t.Errorf("kappa=0 mean %v not ≈ π", mean)
	}
}

func TestVonMisesConcentratesAroundMu(t *testing.T) {
	s := rng.New(3)
	mu := 1.3
	// Circular mean via resultant vector.
	var cs, ss float64
	n := 20000
	for i := 0; i < n; i++ {
		x := VonMises(s, mu, 8)
		cs += math.Cos(x)
		ss += math.Sin(x)
	}
	mean := math.Atan2(ss/float64(n), cs/float64(n))
	if math.Abs(mean-mu) > 0.03 {
		t.Errorf("circular mean %v not ≈ %v", mean, mu)
	}
	// Higher kappa ⇒ larger resultant length (tighter concentration).
	rlen := math.Hypot(cs, ss) / float64(n)
	if rlen < 0.9 {
		t.Errorf("resultant length %v too small for kappa=8", rlen)
	}
}

func TestVonMisesDeterministic(t *testing.T) {
	a, b := rng.New(7), rng.New(7)
	for i := 0; i < 100; i++ {
		if VonMises(a, 0.5, 3) != VonMises(b, 0.5, 3) {
			t.Fatal("VonMises not deterministic per stream")
		}
	}
}
