// Package dist provides the small set of scalar distributions the synthetic
// dataset generators draw from: uniform intervals, angle wrapping, and von
// Mises (circular normal) sampling. All sampling is driven by rng.Stream so
// dataset generation stays deterministic per seed.
package dist

import (
	"math"

	"hdcirc/internal/rng"
)

// Uniform draws a value uniformly from [lo, hi).
func Uniform(stream *rng.Stream, lo, hi float64) float64 {
	return lo + stream.Float64()*(hi-lo)
}

// WrapAngle reduces an angle to the canonical interval [0, 2π).
func WrapAngle(x float64) float64 {
	x = math.Mod(x, 2*math.Pi)
	if x < 0 {
		x += 2 * math.Pi
	}
	return x
}

// Normal draws from the normal distribution with the given mean and
// standard deviation.
func Normal(stream *rng.Stream, mean, sd float64) float64 {
	return mean + sd*stream.NormFloat64()
}

// AR1 returns n samples of a stationary AR(1) process x_t = phi·x_{t−1} + ε_t
// with ε ~ N(0, sd²). The initial sample is drawn from the stationary
// distribution N(0, sd²/(1−phi²)) so the series has no startup transient;
// phi must satisfy |phi| < 1.
func AR1(stream *rng.Stream, n int, phi, sd float64) []float64 {
	if phi <= -1 || phi >= 1 {
		panic("dist: AR(1) coefficient must satisfy |phi| < 1")
	}
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	out[0] = stream.NormFloat64() * sd / math.Sqrt(1-phi*phi)
	for t := 1; t < n; t++ {
		out[t] = phi*out[t-1] + sd*stream.NormFloat64()
	}
	return out
}

// VonMises draws from the von Mises distribution with mean direction mu and
// concentration kappa, using the Best–Fisher (1979) wrapped-Cauchy rejection
// sampler. kappa = 0 degenerates to the circular uniform distribution. The
// result is wrapped to [0, 2π).
func VonMises(stream *rng.Stream, mu, kappa float64) float64 {
	if kappa < 0 {
		panic("dist: negative von Mises concentration")
	}
	if kappa == 0 {
		return Uniform(stream, 0, 2*math.Pi)
	}
	// Very high concentration: the distribution is numerically a normal with
	// variance 1/kappa; the rejection sampler's envelope degenerates there.
	if kappa > 1e7 {
		return WrapAngle(mu + stream.NormFloat64()/math.Sqrt(kappa))
	}
	a := 1 + math.Sqrt(1+4*kappa*kappa)
	b := (a - math.Sqrt(2*a)) / (2 * kappa)
	r := (1 + b*b) / (2 * b)
	for {
		u1 := stream.Float64()
		z := math.Cos(math.Pi * u1)
		f := (1 + r*z) / (r + z)
		c := kappa * (r - f)
		u2 := stream.Float64()
		if c*(2-c)-u2 > 0 || math.Log(c/u2)+1-c >= 0 {
			theta := math.Acos(f)
			if stream.Float64() < 0.5 {
				theta = -theta
			}
			return WrapAngle(mu + theta)
		}
	}
}
