package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testSource adapts math/rand for deterministic test vectors.
type testSource struct{ r *rand.Rand }

func newTestSource(seed int64) *testSource {
	return &testSource{r: rand.New(rand.NewSource(seed))}
}

func (s *testSource) Uint64() uint64 { return s.r.Uint64() }

func TestNewDimensions(t *testing.T) {
	for _, d := range []int{1, 2, 63, 64, 65, 127, 128, 1000, 10000} {
		v := New(d)
		if v.Dim() != d {
			t.Errorf("d=%d: Dim()=%d", d, v.Dim())
		}
		if got, want := len(v.Words()), (d+63)/64; got != want {
			t.Errorf("d=%d: %d words, want %d", d, got, want)
		}
		if v.OnesCount() != 0 {
			t.Errorf("d=%d: new vector has %d ones", d, v.OnesCount())
		}
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	for _, d := range []int{0, -1, -64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", d)
				}
			}()
			New(d)
		}()
	}
}

func TestBitSetGetFlip(t *testing.T) {
	v := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.SetBit(i, 1)
	}
	for _, i := range idx {
		if v.Bit(i) != 1 {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.OnesCount() != len(idx) {
		t.Errorf("OnesCount=%d want %d", v.OnesCount(), len(idx))
	}
	for _, i := range idx {
		v.FlipBit(i)
	}
	if v.OnesCount() != 0 {
		t.Errorf("after flips OnesCount=%d want 0", v.OnesCount())
	}
	v.SetBit(5, 1)
	v.SetBit(5, 0)
	if v.Bit(5) != 0 {
		t.Error("SetBit(i,0) did not clear")
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	v := New(64)
	for _, i := range []int{-1, 64, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", i)
				}
			}()
			v.Bit(i)
		}()
	}
}

func TestNewFromBits(t *testing.T) {
	v := NewFromBits([]int{1, 0, 1, 1, 0})
	want := []int{1, 0, 1, 1, 0}
	for i, w := range want {
		if v.Bit(i) != w {
			t.Errorf("bit %d = %d, want %d", i, v.Bit(i), w)
		}
	}
	if v.Dim() != 5 {
		t.Errorf("Dim=%d want 5", v.Dim())
	}
}

func TestNewFromWords(t *testing.T) {
	if _, err := NewFromWords(65, []uint64{0, 1}); err != nil {
		t.Errorf("valid NewFromWords failed: %v", err)
	}
	if _, err := NewFromWords(65, []uint64{0}); err == nil {
		t.Error("short word slice accepted")
	}
	if _, err := NewFromWords(65, []uint64{0, 4}); err == nil {
		t.Error("tail bits beyond dimension accepted")
	}
	if _, err := NewFromWords(0, nil); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestTailInvariantMaintained(t *testing.T) {
	src := newTestSource(1)
	for _, d := range []int{1, 63, 65, 100, 129} {
		v := Random(d, src)
		w := Random(d, src)
		for name, u := range map[string]*Vector{
			"xor":    v.Xor(w),
			"not":    v.Not(),
			"rotate": v.RotateBits(7),
		} {
			count := 0
			for i := 0; i < u.Dim(); i++ {
				count += u.Bit(i)
			}
			if count != u.OnesCount() {
				t.Errorf("d=%d %s: tail bits leaked (bitwise %d vs popcount %d)",
					d, name, count, u.OnesCount())
			}
		}
	}
}

func TestXorSelfInverse(t *testing.T) {
	src := newTestSource(2)
	a := Random(1000, src)
	b := Random(1000, src)
	if !a.Xor(a.Xor(b)).Equal(b) {
		t.Error("A ⊗ (A ⊗ B) != B")
	}
	if !a.Xor(a).Equal(New(1000)) {
		t.Error("A ⊗ A != 0")
	}
}

func TestXorCommutative(t *testing.T) {
	src := newTestSource(3)
	a, b := Random(777, src), Random(777, src)
	if !a.Xor(b).Equal(b.Xor(a)) {
		t.Error("XOR not commutative")
	}
}

func TestXorIntoAliasing(t *testing.T) {
	src := newTestSource(4)
	a, b := Random(200, src), Random(200, src)
	want := a.Xor(b)
	got := a.Clone()
	got.XorInPlace(b)
	if !got.Equal(want) {
		t.Error("XorInPlace differs from Xor")
	}
	// dst aliases second operand
	b2 := b.Clone()
	a.XorInto(b2, b2)
	if !b2.Equal(want) {
		t.Error("XorInto with aliased dst differs")
	}
}

func TestDistanceProperties(t *testing.T) {
	src := newTestSource(5)
	d := 4096
	a, b, c := Random(d, src), Random(d, src), Random(d, src)
	if a.Distance(a) != 0 {
		t.Error("δ(a,a) != 0")
	}
	if a.Distance(b) != b.Distance(a) {
		t.Error("distance not symmetric")
	}
	// Triangle inequality (Hamming is a metric).
	if a.Distance(c) > a.Distance(b)+b.Distance(c)+1e-12 {
		t.Error("triangle inequality violated")
	}
	if got := a.Distance(a.Not()); got != 1 {
		t.Errorf("δ(a,¬a) = %v, want 1", got)
	}
	// Similarity complement.
	if s, dd := a.Similarity(b), a.Distance(b); s+dd != 1 {
		t.Errorf("similarity+distance = %v, want 1", s+dd)
	}
}

func TestRandomVectorsQuasiOrthogonal(t *testing.T) {
	src := newTestSource(6)
	d := 10000
	a, b := Random(d, src), Random(d, src)
	dist := a.Distance(b)
	// Binomial(d, 1/2): sd ≈ 0.005 at d=10000; 8σ bound.
	if dist < 0.46 || dist > 0.54 {
		t.Errorf("random pair distance %v outside [0.46, 0.54]", dist)
	}
	// Ones should be about half.
	frac := float64(a.OnesCount()) / float64(d)
	if frac < 0.46 || frac > 0.54 {
		t.Errorf("random ones fraction %v outside [0.46, 0.54]", frac)
	}
}

func TestBindingPreservesDistance(t *testing.T) {
	// δ(a⊗c, b⊗c) == δ(a,b): binding is an isometry.
	src := newTestSource(7)
	d := 2048
	a, b, c := Random(d, src), Random(d, src), Random(d, src)
	if a.Xor(c).Distance(b.Xor(c)) != a.Distance(b) {
		t.Error("binding is not an isometry")
	}
}

func TestRotateBitsRoundTrip(t *testing.T) {
	src := newTestSource(8)
	for _, d := range []int{1, 64, 65, 100, 1000} {
		v := Random(d, src)
		for _, k := range []int{0, 1, 7, d - 1, d, d + 3, -1, -d} {
			r := v.RotateBits(k).RotateBits(-k)
			if !r.Equal(v) {
				t.Errorf("d=%d k=%d: rotate round-trip failed", d, k)
			}
		}
	}
}

func TestRotateBitsShiftsCorrectly(t *testing.T) {
	v := New(10)
	v.SetBit(0, 1)
	v.SetBit(9, 1)
	r := v.RotateBits(1)
	if r.Bit(1) != 1 || r.Bit(0) != 1 {
		t.Errorf("rotate misplaced bits: %v", r)
	}
	if r.OnesCount() != 2 {
		t.Errorf("rotation changed popcount: %d", r.OnesCount())
	}
}

func TestRotateBitsPreservesDistanceStructure(t *testing.T) {
	src := newTestSource(9)
	d := 1024
	a, b := Random(d, src), Random(d, src)
	if a.RotateBits(13).Distance(b.RotateBits(13)) != a.Distance(b) {
		t.Error("permutation is not an isometry")
	}
	// Rotation output should be dissimilar to the input for random vectors.
	if sim := a.Similarity(a.RotateBits(1)); sim > 0.6 {
		t.Errorf("rotated vector too similar to original: %v", sim)
	}
}

func TestRotateWords(t *testing.T) {
	src := newTestSource(10)
	d := 256
	v := Random(d, src)
	r := v.RotateWords(1)
	if r.OnesCount() != v.OnesCount() {
		t.Error("RotateWords changed popcount")
	}
	if !v.RotateWords(1).RotateWords(3).Equal(v.RotateWords(4)) {
		t.Error("RotateWords not additive")
	}
	if !v.RotateWords(4).Equal(v) { // 4 words total
		t.Error("full word rotation != identity")
	}
	if !v.RotateWords(-1).Equal(v.RotateWords(3)) {
		t.Error("negative word rotation mismatch")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RotateWords on non-multiple-of-64 dim did not panic")
			}
		}()
		Random(100, src).RotateWords(1)
	}()
}

func TestRotateWordsMatchesRotateBits(t *testing.T) {
	src := newTestSource(11)
	v := Random(192, src)
	if !v.RotateWords(1).Equal(v.RotateBits(64)) {
		t.Error("RotateWords(1) != RotateBits(64) for d multiple of 64")
	}
}

func TestCloneIndependence(t *testing.T) {
	src := newTestSource(12)
	v := Random(128, src)
	c := v.Clone()
	c.FlipBit(0)
	if v.Bit(0) == c.Bit(0) {
		t.Error("clone shares storage with original")
	}
}

func TestCopyFrom(t *testing.T) {
	src := newTestSource(13)
	v, w := Random(128, src), Random(128, src)
	v.CopyFrom(w)
	if !v.Equal(w) {
		t.Error("CopyFrom mismatch")
	}
}

func TestEqualDifferentDims(t *testing.T) {
	if New(64).Equal(New(65)) {
		t.Error("vectors of different dimension compare equal")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	a, b := New(64), New(65)
	for name, f := range map[string]func(){
		"xor":      func() { a.Xor(b) },
		"distance": func() { a.Distance(b) },
		"copyfrom": func() { a.CopyFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched dims did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestString(t *testing.T) {
	v := NewFromBits([]int{1, 0, 1})
	if got := v.String(); got != "101" {
		t.Errorf("String()=%q want %q", got, "101")
	}
	long := New(100)
	if s := long.String(); len(s) < 64 {
		t.Errorf("long String too short: %q", s)
	}
}

// Property-based tests via testing/quick.

func TestQuickXorSelfInverse(t *testing.T) {
	src := newTestSource(20)
	f := func(seedA, seedB uint16) bool {
		d := 512
		a := Random(d, newTestSource(int64(seedA)))
		b := Random(d, newTestSource(int64(seedB)))
		_ = src
		return a.Xor(a.Xor(b)).Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceBounds(t *testing.T) {
	f := func(seedA, seedB uint16, dsel uint8) bool {
		d := 64 + int(dsel)%512
		a := Random(d, newTestSource(int64(seedA)))
		b := Random(d, newTestSource(int64(seedB)))
		dist := a.Distance(b)
		return dist >= 0 && dist <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRotationPopcountInvariant(t *testing.T) {
	f := func(seed uint16, k int16) bool {
		d := 300
		v := Random(d, newTestSource(int64(seed)))
		return v.RotateBits(int(k)).OnesCount() == v.OnesCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHammingMatchesNaive(t *testing.T) {
	f := func(seedA, seedB uint16) bool {
		d := 200
		a := Random(d, newTestSource(int64(seedA)))
		b := Random(d, newTestSource(int64(seedB)))
		naive := 0
		for i := 0; i < d; i++ {
			if a.Bit(i) != b.Bit(i) {
				naive++
			}
		}
		return naive == a.HammingDistance(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
