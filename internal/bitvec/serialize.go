package bitvec

// Binary serialization. HDC models are deployed to embedded targets where a
// trained basis set or classifier is burned into flash; the wire format
// here is the minimal little-endian framing those loaders want:
//
//	magic "HVEC" | uint32 version | uint64 dimension | words…
//
// Only encoding/binary-style manual packing is used (stdlib, no reflection).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	vectorMagic   = "HVEC"
	vectorVersion = 1
)

// WriteTo serializes the vector to w in the HVEC framing. It implements
// io.WriterTo.
func (v *Vector) WriteTo(w io.Writer) (int64, error) {
	var n int64
	header := make([]byte, 4+4+8)
	copy(header, vectorMagic)
	binary.LittleEndian.PutUint32(header[4:], vectorVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(v.d))
	k, err := w.Write(header)
	n += int64(k)
	if err != nil {
		return n, err
	}
	buf := make([]byte, 8*len(v.words))
	for i, word := range v.words {
		binary.LittleEndian.PutUint64(buf[8*i:], word)
	}
	k, err = w.Write(buf)
	n += int64(k)
	return n, err
}

// ReadVector deserializes a vector written by WriteTo.
func ReadVector(r io.Reader) (*Vector, error) {
	header := make([]byte, 4+4+8)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("bitvec: reading header: %w", err)
	}
	if string(header[:4]) != vectorMagic {
		return nil, errors.New("bitvec: bad magic (not a hypervector stream)")
	}
	if ver := binary.LittleEndian.Uint32(header[4:]); ver != vectorVersion {
		return nil, fmt.Errorf("bitvec: unsupported version %d", ver)
	}
	// Bounded like ReadAccumulator: the dimension sizes an allocation from
	// untrusted input and must stay clear of 32-bit int wraparound.
	d64 := binary.LittleEndian.Uint64(header[8:])
	if d64 == 0 || d64 > 1<<27 {
		return nil, fmt.Errorf("bitvec: implausible dimension %d", d64)
	}
	d := int(d64)
	v := New(d)
	buf := make([]byte, 8*len(v.words))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("bitvec: reading words: %w", err)
	}
	for i := range v.words {
		v.words[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	if tail := v.tailMask(); v.words[len(v.words)-1]&^tail != 0 {
		return nil, errors.New("bitvec: corrupt stream: tail bits set beyond dimension")
	}
	return v, nil
}

const (
	accMagic   = "HACC"
	accVersion = 1
)

// WriteTo serializes the accumulator — the EXACT training state, counters
// and addition count, not the thresholded prototype. This is what durable
// checkpoints (internal/serve) persist so that replaying a write-ahead-log
// suffix on the restored state stays bit-identical to a full sequential
// replay; the finalized-prototype formats (HVEC/HCLS/HREG) cannot promise
// that because they re-seed at unit weight.
//
//	stream: magic "HACC" | uint32 version | uint64 dimension | int64 n
//	        | dimension × int32 counts
func (a *Accumulator) WriteTo(w io.Writer) (int64, error) {
	header := make([]byte, 4+4+8+8)
	copy(header, accMagic)
	binary.LittleEndian.PutUint32(header[4:], accVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(a.d))
	binary.LittleEndian.PutUint64(header[16:], uint64(a.n))
	var n int64
	k, err := w.Write(header)
	n += int64(k)
	if err != nil {
		return n, err
	}
	buf := make([]byte, 4*len(a.counts))
	for i, c := range a.counts {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(c))
	}
	k, err = w.Write(buf)
	n += int64(k)
	return n, err
}

// ReadAccumulator deserializes an accumulator written by WriteTo. The
// result is state-identical to the saved one: it thresholds to the same
// prototype and continues training exactly where the original would have.
func ReadAccumulator(r io.Reader) (*Accumulator, error) {
	header := make([]byte, 4+4+8+8)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("bitvec: reading accumulator header: %w", err)
	}
	if string(header[:4]) != accMagic {
		return nil, errors.New("bitvec: bad magic (not an accumulator stream)")
	}
	if ver := binary.LittleEndian.Uint32(header[4:]); ver != accVersion {
		return nil, fmt.Errorf("bitvec: unsupported accumulator version %d", ver)
	}
	// The bound is deliberately far below what int can hold: the dimension
	// drives a 4-byte-per-dimension allocation from untrusted input, and on
	// 32-bit builds anything past 1<<31 would wrap int negative and panic
	// in NewAccumulator instead of erroring.
	d64 := binary.LittleEndian.Uint64(header[8:])
	if d64 == 0 || d64 > 1<<27 {
		return nil, fmt.Errorf("bitvec: implausible accumulator dimension %d", d64)
	}
	a := NewAccumulator(int(d64))
	a.n = int(int64(binary.LittleEndian.Uint64(header[16:])))
	buf := make([]byte, 4*len(a.counts))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("bitvec: reading accumulator counts: %w", err)
	}
	for i := range a.counts {
		a.counts[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return a, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (v *Vector) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 16+8*len(v.words))
	w := &appendWriter{buf: buf}
	if _, err := v.WriteTo(w); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (v *Vector) UnmarshalBinary(data []byte) error {
	got, err := ReadVector(&sliceReader{data: data})
	if err != nil {
		return err
	}
	*v = *got
	return nil
}

// appendWriter is an io.Writer over an append-grown buffer.
type appendWriter struct{ buf []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// sliceReader is a minimal io.Reader over a byte slice (avoids importing
// bytes for one call site).
type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
