package bitvec

import (
	"math/rand"
	"testing"
)

func TestDistanceBoundedAgreesWithReference(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for _, d := range kernelDims {
		a := Random(d, newTestSource(r.Int63()))
		b := Random(d, newTestSource(r.Int63()))
		want := referenceHammingDistance(a, b)
		for _, bound := range []int{-1, 0, want - 1, want, want + 1, d, d + 1} {
			hd, within := DistanceBounded(a, b, bound)
			if within != (want <= bound) {
				t.Fatalf("d=%d bound=%d: within=%v, true distance %d", d, bound, within, want)
			}
			if within && hd != want {
				t.Fatalf("d=%d bound=%d: hd=%d, reference %d", d, bound, hd, want)
			}
			if !within && hd <= bound {
				t.Fatalf("d=%d bound=%d: abandoned with hd=%d <= bound", d, bound, hd)
			}
		}
	}
}

func TestDistanceBoundedSelf(t *testing.T) {
	v := Random(777, newTestSource(7))
	if hd, within := DistanceBounded(v, v, 0); !within || hd != 0 {
		t.Fatalf("self distance: hd=%d within=%v", hd, within)
	}
}

func TestNearestPrunedAgreesWithReference(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for _, d := range kernelDims {
		q := Random(d, newTestSource(r.Int63()))
		vs := make([]*Vector, 33)
		for i := range vs {
			// Mix of near and far candidates so the bound actually prunes.
			if i%5 == 0 {
				vs[i] = q.Clone()
				for f := 0; f < d/10+i; f++ {
					vs[i].FlipBit(r.Intn(d))
				}
			} else {
				vs[i] = Random(d, newTestSource(r.Int63()))
			}
		}
		for _, bound := range []int{0, 1, d / 4, d / 2, d, d + 1} {
			gi, gh := NearestPruned(q, vs, bound)
			wi, wh := referenceNearestPruned(q, vs, bound)
			if gi != wi || gh != wh {
				t.Fatalf("d=%d bound=%d: got (%d,%d), reference (%d,%d)", d, bound, gi, gh, wi, wh)
			}
		}
	}
}

func TestNearestPrunedMatchesNearestAtFullBound(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	for _, d := range []int{65, 1000, 10000} {
		q := Random(d, newTestSource(r.Int63()))
		vs := make([]*Vector, 50)
		for i := range vs {
			vs[i] = Random(d, newTestSource(r.Int63()))
		}
		ni, nh := Nearest(q, vs)
		pi, ph := NearestPruned(q, vs, d+1)
		if ni != pi || nh != ph {
			t.Fatalf("d=%d: Nearest (%d,%d) vs NearestPruned (%d,%d)", d, ni, nh, pi, ph)
		}
	}
}

func TestNearestPrunedEmptyAndNoWinner(t *testing.T) {
	q := Random(100, newTestSource(1))
	if idx, hd := NearestPruned(q, nil, 10); idx != -1 || hd != 10 {
		t.Fatalf("empty list: got (%d,%d), want (-1,10)", idx, hd)
	}
	far := q.Not()
	if idx, hd := NearestPruned(q, []*Vector{far}, 5); idx != -1 || hd != 5 {
		t.Fatalf("no winner: got (%d,%d), want (-1,5)", idx, hd)
	}
}

func TestNearestPrunedTieResolvesToLowestIndex(t *testing.T) {
	q := Random(257, newTestSource(9))
	a := q.Clone()
	a.FlipBit(3)
	b := q.Clone()
	b.FlipBit(200)
	if idx, hd := NearestPruned(q, []*Vector{a, b}, 258); idx != 0 || hd != 1 {
		t.Fatalf("tie: got (%d,%d), want (0,1)", idx, hd)
	}
}
