package bitvec

import "fmt"

// Source is the minimal random source bitvec needs; internal/rng.Stream
// satisfies it. Keeping the interface here avoids a dependency cycle and
// lets tests plug in counters or constants.
type Source interface {
	Uint64() uint64
}

// Random returns a hypervector whose bits are i.i.d. uniform — the paper's
// random-hypervector. Each call consumes ⌈d/64⌉ values from src.
func Random(d int, src Source) *Vector {
	v := New(d)
	for i := range v.words {
		v.words[i] = src.Uint64()
	}
	v.clearTail()
	return v
}

// TieBreak selects what Majority does with dimensions where exactly half of
// an even number of operands are set.
type TieBreak int

const (
	// TieZero resolves ties to 0.
	TieZero TieBreak = iota
	// TieOne resolves ties to 1.
	TieOne
	// TieRandom resolves each tied dimension with an independent fair coin
	// from the source passed to the bundling call.
	TieRandom
)

func (t TieBreak) String() string {
	switch t {
	case TieZero:
		return "TieZero"
	case TieOne:
		return "TieOne"
	case TieRandom:
		return "TieRandom"
	default:
		return fmt.Sprintf("TieBreak(%d)", int(t))
	}
}

// Majority bundles the operands with the element-wise majority rule and
// returns the result: output bit i is 1 when more than half of the operands
// have bit i set. Ties (possible only for an even operand count) are
// resolved per tie; src may be nil unless tie == TieRandom. It panics on an
// empty operand list or mismatched dimensions.
func Majority(vs []*Vector, tie TieBreak, src Source) *Vector {
	if len(vs) == 0 {
		panic("bitvec: Majority of zero vectors")
	}
	acc := NewAccumulator(vs[0].Dim())
	for _, v := range vs {
		acc.Add(v)
	}
	return acc.Threshold(tie, src)
}

// Accumulator is the integer counter form of bundling. HDC training bundles
// thousands of hypervectors into a class prototype; doing that with pairwise
// majorities loses information, so models accumulate per-dimension counts
// and threshold once (or re-threshold after online updates). Counts are
// int32 per dimension: ±2 billion updates per dimension is far beyond any
// training set this library targets.
type Accumulator struct {
	d      int
	counts []int32
	n      int // number of (signed unit) additions, used for the majority threshold
}

// NewAccumulator returns an empty accumulator for dimension d.
func NewAccumulator(d int) *Accumulator {
	if d <= 0 {
		panic(fmt.Sprintf("bitvec: dimension must be positive, got %d", d))
	}
	return &Accumulator{d: d, counts: make([]int32, d)}
}

// Dim returns the accumulator dimension.
func (a *Accumulator) Dim() int { return a.d }

// N returns how many vectors have been added (minus weight on Sub).
func (a *Accumulator) N() int { return a.n }

// Add accumulates v with weight +1: each set bit contributes +1, each clear
// bit −1. This is the bipolar view of binary bundling and makes Add/Sub
// exact inverses, which the online classifier refinement relies on.
func (a *Accumulator) Add(v *Vector) { a.addWeighted(v, 1) }

// Sub removes one previously added copy of v (weight −1).
func (a *Accumulator) Sub(v *Vector) { a.addWeighted(v, -1) }

// AddWeighted accumulates v with an arbitrary integer weight.
func (a *Accumulator) AddWeighted(v *Vector, w int) { a.addWeighted(v, int32(w)) }

func (a *Accumulator) addWeighted(v *Vector, w int32) {
	if v.Dim() != a.d {
		panic(fmt.Sprintf("bitvec: dimension mismatch %d vs %d", v.Dim(), a.d))
	}
	for i := 0; i < a.d; i++ {
		if v.words[i>>6]>>(uint(i)&63)&1 == 1 {
			a.counts[i] += w
		} else {
			a.counts[i] -= w
		}
	}
	a.n += int(w)
}

// Counts exposes the per-dimension bipolar counters (not a copy).
func (a *Accumulator) Counts() []int32 { return a.counts }

// Reset clears the accumulator for reuse.
func (a *Accumulator) Reset() {
	for i := range a.counts {
		a.counts[i] = 0
	}
	a.n = 0
}

// ThresholdTieVector collapses the accumulator into a binary hypervector,
// resolving tied dimensions (count exactly zero) to the corresponding bit
// of tv. Using a fixed random tie vector makes thresholding deterministic
// and independent of call order, which in turn makes encoders safe to use
// from concurrent goroutines — the property the experiment harness's
// parallel encoding relies on.
func (a *Accumulator) ThresholdTieVector(tv *Vector) *Vector {
	if tv.Dim() != a.d {
		panic(fmt.Sprintf("bitvec: tie vector dimension %d, accumulator %d", tv.Dim(), a.d))
	}
	v := New(a.d)
	for i, c := range a.counts {
		switch {
		case c > 0:
			v.setBit(i)
		case c == 0:
			if tv.Bit(i) == 1 {
				v.setBit(i)
			}
		}
	}
	return v
}

// Threshold collapses the accumulator into a binary hypervector: bit i is 1
// when the bipolar count is positive, 0 when negative, and resolved by tie
// when exactly zero. src may be nil unless tie == TieRandom.
func (a *Accumulator) Threshold(tie TieBreak, src Source) *Vector {
	if tie == TieRandom && src == nil {
		panic("bitvec: TieRandom requires a random source")
	}
	v := New(a.d)
	var coin uint64
	coinLeft := 0
	for i, c := range a.counts {
		switch {
		case c > 0:
			v.setBit(i)
		case c < 0:
			// leave 0
		default:
			switch tie {
			case TieOne:
				v.setBit(i)
			case TieRandom:
				if coinLeft == 0 {
					coin = src.Uint64()
					coinLeft = 64
				}
				if coin&1 == 1 {
					v.setBit(i)
				}
				coin >>= 1
				coinLeft--
			}
		}
	}
	return v
}
