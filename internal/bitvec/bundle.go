package bitvec

import (
	"fmt"
	"math"
	"math/bits"
)

// Source is the minimal random source bitvec needs; internal/rng.Stream
// satisfies it. Keeping the interface here avoids a dependency cycle and
// lets tests plug in counters or constants.
type Source interface {
	Uint64() uint64
}

// Random returns a hypervector whose bits are i.i.d. uniform — the paper's
// random-hypervector. Each call consumes ⌈d/64⌉ values from src.
func Random(d int, src Source) *Vector {
	v := New(d)
	for i := range v.words {
		v.words[i] = src.Uint64()
	}
	v.clearTail()
	return v
}

// TieBreak selects what Majority does with dimensions where exactly half of
// an even number of operands are set.
type TieBreak int

const (
	// TieZero resolves ties to 0.
	TieZero TieBreak = iota
	// TieOne resolves ties to 1.
	TieOne
	// TieRandom resolves each tied dimension with an independent fair coin
	// from the source passed to the bundling call.
	TieRandom
)

func (t TieBreak) String() string {
	switch t {
	case TieZero:
		return "TieZero"
	case TieOne:
		return "TieOne"
	case TieRandom:
		return "TieRandom"
	default:
		return fmt.Sprintf("TieBreak(%d)", int(t))
	}
}

// csaMaxOperands bounds the carry-save-adder Majority fast path: per-position
// counts up to 64 fit the seven bit-planes majorityCSA keeps in registers.
const csaMaxOperands = 64

// Majority bundles the operands with the element-wise majority rule and
// returns the result: output bit i is 1 when more than half of the operands
// have bit i set. Ties (possible only for an even operand count) are
// resolved per tie; src may be nil unless tie == TieRandom. It panics on an
// empty operand list or mismatched dimensions.
//
// Operand lists of up to 64 vectors take a bit-sliced carry-save-adder path
// that counts all 64 positions of a word simultaneously and never
// materializes integer counters; larger lists fall back to an Accumulator.
// Both paths produce identical vectors and draw identical tie coins.
func Majority(vs []*Vector, tie TieBreak, src Source) *Vector {
	if len(vs) == 0 {
		panic("bitvec: Majority of zero vectors")
	}
	d := vs[0].Dim()
	for _, v := range vs[1:] {
		if v.Dim() != d {
			panic(fmt.Sprintf("bitvec: dimension mismatch %d vs %d", v.Dim(), d))
		}
	}
	if len(vs) <= csaMaxOperands {
		return majorityCSA(vs, tie, src)
	}
	acc := NewAccumulator(d)
	for _, v := range vs {
		acc.Add(v)
	}
	return acc.Threshold(tie, src)
}

// majorityCSA is the bit-sliced majority kernel. For every 64-bit word it
// accumulates the operands into up to seven bit-planes (plane p holds bit p
// of the per-position count) with a ripple carry-save adder, then compares
// the bit-sliced counts against the majority threshold with a plane-wise
// comparator — all in registers, O(words · operands) with no per-bit work.
func majorityCSA(vs []*Vector, tie TieBreak, src Source) *Vector {
	if tie == TieRandom && src == nil {
		panic("bitvec: TieRandom requires a random source")
	}
	k := len(vs)
	out := New(vs[0].d)
	thr := k / 2 // majority is count > thr; count == thr ties (even k only)
	nPlanes := bits.Len(uint(k))
	var coin uint64
	coinLeft := 0
	for wi := range out.words {
		var planes [7]uint64
		for _, v := range vs {
			carry := v.words[wi]
			for p := 0; carry != 0; p++ {
				carry, planes[p] = planes[p]&carry, planes[p]^carry
			}
		}
		// Plane-wise comparison of the counts against thr, most significant
		// plane first: gt collects positions already decided greater, eq
		// tracks positions whose high planes still equal thr's bits.
		gt, eq := uint64(0), ^uint64(0)
		for p := nPlanes - 1; p >= 0; p-- {
			var tb uint64
			if thr>>uint(p)&1 == 1 {
				tb = ^uint64(0)
			}
			gt |= eq & planes[p] &^ tb
			eq &= ^(planes[p] ^ tb)
		}
		word := gt
		if k&1 == 0 {
			ties := eq
			if wi == len(out.words)-1 {
				ties &= out.tailMask()
			}
			switch tie {
			case TieOne:
				word |= ties
			case TieRandom:
				// One coin bit per tied position in dimension order — the
				// same consumption pattern as Accumulator.Threshold, so the
				// two paths are bit-identical for equal sources.
				for t := ties; t != 0; t &= t - 1 {
					if coinLeft == 0 {
						coin = src.Uint64()
						coinLeft = 64
					}
					if coin&1 == 1 {
						word |= t & -t
					}
					coin >>= 1
					coinLeft--
				}
			}
		}
		out.words[wi] = word
	}
	return out
}

// Accumulator is the integer counter form of bundling. HDC training bundles
// thousands of hypervectors into a class prototype; doing that with pairwise
// majorities loses information, so models accumulate per-dimension counts
// and threshold once (or re-threshold after online updates). Counts are
// int32 per dimension: ±2 billion updates per dimension is far beyond any
// training set this library targets.
type Accumulator struct {
	d      int
	counts []int32
	n      int // number of (signed unit) additions, used for the majority threshold
}

// NewAccumulator returns an empty accumulator for dimension d.
func NewAccumulator(d int) *Accumulator {
	if d <= 0 {
		panic(fmt.Sprintf("bitvec: dimension must be positive, got %d", d))
	}
	return &Accumulator{d: d, counts: make([]int32, d)}
}

// Dim returns the accumulator dimension.
func (a *Accumulator) Dim() int { return a.d }

// Clone returns an independent copy of the accumulator. Copy-on-write
// snapshot layers (internal/sdm's Fork, internal/serve) clone only the
// counters a write batch touches, so snapshots share the untouched
// majority of the training state.
func (a *Accumulator) Clone() *Accumulator {
	cp := &Accumulator{d: a.d, counts: make([]int32, len(a.counts)), n: a.n}
	copy(cp.counts, a.counts)
	return cp
}

// N returns how many vectors have been added (minus weight on Sub).
func (a *Accumulator) N() int { return a.n }

// Add accumulates v with weight +1: each set bit contributes +1, each clear
// bit −1. This is the bipolar view of binary bundling and makes Add/Sub
// exact inverses, which the online classifier refinement relies on.
func (a *Accumulator) Add(v *Vector) { a.addWeighted(v, 1) }

// Sub removes one previously added copy of v (weight −1).
func (a *Accumulator) Sub(v *Vector) { a.addWeighted(v, -1) }

// AddWeighted accumulates v with an arbitrary integer weight. It panics
// when the weight does not fit the int32 per-dimension counters rather than
// silently truncating it.
func (a *Accumulator) AddWeighted(v *Vector, w int) {
	// MinInt32 itself is excluded: clear bits contribute −w, and negating
	// MinInt32 wraps back to MinInt32 — the one counter value the
	// branch-free sign kernels in thresholdWord/posWord cannot classify.
	if w > math.MaxInt32 || w <= math.MinInt32 {
		panic(fmt.Sprintf("bitvec: weight %d overflows the int32 accumulator counters", w))
	}
	a.addWeighted(v, int32(w))
}

// addWeighted is the accumulation kernel. It walks v a 64-bit word at a
// time and updates counts branch-free: hypervector bits are fair coins, so
// a per-bit branch mispredicts half the time and dominates the loop.
func (a *Accumulator) addWeighted(v *Vector, w int32) {
	if v.Dim() != a.d {
		panic(fmt.Sprintf("bitvec: dimension mismatch %d vs %d", v.Dim(), a.d))
	}
	counts := a.counts
	w2 := w + w
	for wi, word := range v.words {
		base := wi << 6
		n := a.d - base
		if n > 64 {
			n = 64
		}
		c := counts[base : base+n : base+n]
		if len(c) == 64 {
			// +w when the bit is set, −w when clear: bit·2w − w. Two
			// independent half-word streams with constant 1-bit shifts.
			lo, hi := word, word>>32
			for b := 0; b < 32; b++ {
				c[b] += int32(lo&1)*w2 - w
				c[b+32] += int32(hi&1)*w2 - w
				lo >>= 1
				hi >>= 1
			}
			continue
		}
		for b := range c {
			c[b] += int32(word&1)*w2 - w
			word >>= 1
		}
	}
	a.n += int(w)
}

// Counts exposes the per-dimension bipolar counters (not a copy).
func (a *Accumulator) Counts() []int32 { return a.counts }

// Reset clears the accumulator for reuse.
func (a *Accumulator) Reset() {
	for i := range a.counts {
		a.counts[i] = 0
	}
	a.n = 0
}

// thresholdWord collapses one word's worth of counts into an output word and
// a tie mask, branch-free: bit b of word is 1 when counts[base+b] > 0, bit b
// of ties is 1 when the count is exactly zero. The sign tricks rely on the
// counters staying clear of math.MinInt32, which the ±2-billion-update
// budget documented on Accumulator guarantees.
func thresholdWord(c []int32) (word, ties uint64) {
	// Walk the counts high-to-low and shift finished bits in at the bottom:
	// constant 1-bit shifts are cheaper than positioning each bit with a
	// variable shift. uint32(cv−1)>>31 is 1 iff cv ≤ 0; uint32(cv|−cv)>>31
	// is 1 iff cv ≠ 0. Full words run four independent 16-bit chains per
	// output, like posWord — this kernel sits on the encoder hot path via
	// ThresholdTieVector.
	if len(c) == 64 {
		var w0, w1, w2, w3, t0, t1, t2, t3 uint64
		for i := 15; i >= 0; i-- {
			c0, c1, c2, c3 := c[i], c[i+16], c[i+32], c[i+48]
			w0 = w0<<1 | uint64(uint32(c0-1)>>31^1)
			w1 = w1<<1 | uint64(uint32(c1-1)>>31^1)
			w2 = w2<<1 | uint64(uint32(c2-1)>>31^1)
			w3 = w3<<1 | uint64(uint32(c3-1)>>31^1)
			t0 = t0<<1 | uint64(uint32(c0|-c0)>>31^1)
			t1 = t1<<1 | uint64(uint32(c1|-c1)>>31^1)
			t2 = t2<<1 | uint64(uint32(c2|-c2)>>31^1)
			t3 = t3<<1 | uint64(uint32(c3|-c3)>>31^1)
		}
		return w3<<48 | w2<<32 | w1<<16 | w0, t3<<48 | t2<<32 | t1<<16 | t0
	}
	for i := len(c) - 1; i >= 0; i-- {
		cv := c[i]
		word = word<<1 | uint64(uint32(cv-1)>>31^1)
		ties = ties<<1 | uint64(uint32(cv|-cv)>>31^1)
	}
	return word, ties
}

// ThresholdTieVector collapses the accumulator into a binary hypervector,
// resolving tied dimensions (count exactly zero) to the corresponding bit
// of tv. Using a fixed random tie vector makes thresholding deterministic
// and independent of call order, which in turn makes encoders safe to use
// from concurrent goroutines — the property the batch pipeline's parallel
// encoding relies on.
func (a *Accumulator) ThresholdTieVector(tv *Vector) *Vector {
	if tv.Dim() != a.d {
		panic(fmt.Sprintf("bitvec: tie vector dimension %d, accumulator %d", tv.Dim(), a.d))
	}
	v := New(a.d)
	for wi := range v.words {
		base := wi << 6
		n := a.d - base
		if n > 64 {
			n = 64
		}
		word, ties := thresholdWord(a.counts[base : base+n : base+n])
		v.words[wi] = word | ties&tv.words[wi]
	}
	return v
}

// posWord packs "count > 0" into a word: bit b is 1 iff c[b] > 0. Full
// words run four independent 16-bit shift-in chains so the result bits
// don't form one 64-step serial dependency.
func posWord(c []int32) (word uint64) {
	if len(c) == 64 {
		var q0, q1, q2, q3 uint64
		for i := 15; i >= 0; i-- {
			q0 = q0<<1 | uint64(uint32(c[i]-1)>>31^1)
			q1 = q1<<1 | uint64(uint32(c[i+16]-1)>>31^1)
			q2 = q2<<1 | uint64(uint32(c[i+32]-1)>>31^1)
			q3 = q3<<1 | uint64(uint32(c[i+48]-1)>>31^1)
		}
		return q3<<48 | q2<<32 | q1<<16 | q0
	}
	for i := len(c) - 1; i >= 0; i-- {
		word = word<<1 | uint64(uint32(c[i]-1)>>31^1)
	}
	return word
}

// nonNegWord packs "count ≥ 0" into a word: bit b is 1 iff c[b] >= 0.
func nonNegWord(c []int32) (word uint64) {
	if len(c) == 64 {
		var q0, q1, q2, q3 uint64
		for i := 15; i >= 0; i-- {
			q0 = q0<<1 | uint64(uint32(c[i])>>31^1)
			q1 = q1<<1 | uint64(uint32(c[i+16])>>31^1)
			q2 = q2<<1 | uint64(uint32(c[i+32])>>31^1)
			q3 = q3<<1 | uint64(uint32(c[i+48])>>31^1)
		}
		return q3<<48 | q2<<32 | q1<<16 | q0
	}
	for i := len(c) - 1; i >= 0; i-- {
		word = word<<1 | uint64(uint32(c[i])>>31^1)
	}
	return word
}

// Threshold collapses the accumulator into a binary hypervector: bit i is 1
// when the bipolar count is positive, 0 when negative, and resolved by tie
// when exactly zero. src may be nil unless tie == TieRandom.
//
// Each tie mode gets its own word kernel: TieZero is exactly "count > 0"
// and TieOne exactly "count ≥ 0", so neither needs the tie mask that
// TieRandom's coin drawing does.
func (a *Accumulator) Threshold(tie TieBreak, src Source) *Vector {
	if tie == TieRandom && src == nil {
		panic("bitvec: TieRandom requires a random source")
	}
	v := New(a.d)
	var coin uint64
	coinLeft := 0
	for wi := range v.words {
		base := wi << 6
		n := a.d - base
		if n > 64 {
			n = 64
		}
		c := a.counts[base : base+n : base+n]
		switch tie {
		case TieOne:
			v.words[wi] = nonNegWord(c)
		case TieRandom:
			word, ties := thresholdWord(c)
			for t := ties; t != 0; t &= t - 1 {
				if coinLeft == 0 {
					coin = src.Uint64()
					coinLeft = 64
				}
				if coin&1 == 1 {
					word |= t & -t
				}
				coin >>= 1
				coinLeft--
			}
			v.words[wi] = word
		default:
			// TieZero and unrecognized TieBreak values: ties stay 0, the
			// same treatment the per-bit reference gives them.
			v.words[wi] = posWord(c)
		}
	}
	return v
}
