package bitvec

import (
	"testing"
	"testing/quick"
)

func TestRotateMatchesRotateBitsAllShifts(t *testing.T) {
	src := newTestSource(71)
	for _, d := range []int{64, 128, 192, 1024} {
		v := Random(d, src)
		for k := -d - 3; k <= d+3; k++ {
			if !v.Rotate(k).Equal(v.RotateBits(k)) {
				t.Fatalf("d=%d k=%d: fast path diverges from bit loop", d, k)
			}
		}
	}
}

func TestRotateFallbackNonMultiple(t *testing.T) {
	src := newTestSource(72)
	for _, d := range []int{1, 63, 65, 100, 1000} {
		v := Random(d, src)
		for _, k := range []int{0, 1, 17, d - 1, -4} {
			if !v.Rotate(k).Equal(v.RotateBits(k)) {
				t.Fatalf("d=%d k=%d: fallback diverges", d, k)
			}
		}
	}
}

func TestRotateZeroIsClone(t *testing.T) {
	src := newTestSource(73)
	v := Random(256, src)
	r := v.Rotate(0)
	if !r.Equal(v) {
		t.Fatal("rotate by 0 changed vector")
	}
	r.FlipBit(0)
	if v.Bit(0) == r.Bit(0) {
		t.Fatal("rotate by 0 shares storage")
	}
}

func TestRotateComposition(t *testing.T) {
	src := newTestSource(74)
	v := Random(640, src)
	if !v.Rotate(13).Rotate(29).Equal(v.Rotate(42)) {
		t.Error("rotations do not compose additively")
	}
	if !v.Rotate(640).Equal(v) {
		t.Error("full rotation is not identity")
	}
}

func TestQuickRotateRoundTrip(t *testing.T) {
	f := func(seed uint16, kRaw int16) bool {
		d := 320
		v := Random(d, newTestSource(int64(seed)))
		k := int(kRaw)
		return v.Rotate(k).Rotate(-k).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRotatePreservesPopcount(t *testing.T) {
	f := func(seed uint16, kRaw uint8) bool {
		d := 192
		v := Random(d, newTestSource(int64(seed)))
		return v.Rotate(int(kRaw)).OnesCount() == v.OnesCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
