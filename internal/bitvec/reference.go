package bitvec

// Per-bit reference implementations of the bundling and permutation
// kernels. These are the original (obviously correct) loops the
// word-parallel kernels in bundle.go, rotate.go and nearest.go are
// differential-tested against; they are not used on any hot path. Keep
// them byte-for-byte boring: their only job is to be easy to audit.

// referenceAddWeighted is the per-bit accumulation loop: bit i of v
// contributes +w when set and −w when clear.
func (a *Accumulator) referenceAddWeighted(v *Vector, w int32) {
	if v.Dim() != a.d {
		panic("bitvec: dimension mismatch")
	}
	for i := 0; i < a.d; i++ {
		if v.words[i>>6]>>(uint(i)&63)&1 == 1 {
			a.counts[i] += w
		} else {
			a.counts[i] -= w
		}
	}
	a.n += int(w)
}

// referenceThreshold is the per-bit thresholding loop, consuming one coin
// bit per tied dimension in dimension order under TieRandom (the coin
// word is refilled every 64 consumed bits).
func (a *Accumulator) referenceThreshold(tie TieBreak, src Source) *Vector {
	if tie == TieRandom && src == nil {
		panic("bitvec: TieRandom requires a random source")
	}
	v := New(a.d)
	var coin uint64
	coinLeft := 0
	for i, c := range a.counts {
		switch {
		case c > 0:
			v.setBit(i)
		case c < 0:
			// leave 0
		default:
			switch tie {
			case TieOne:
				v.setBit(i)
			case TieRandom:
				if coinLeft == 0 {
					coin = src.Uint64()
					coinLeft = 64
				}
				if coin&1 == 1 {
					v.setBit(i)
				}
				coin >>= 1
				coinLeft--
			}
		}
	}
	return v
}

// referenceThresholdTieVector is the per-bit tie-vector thresholding loop.
func (a *Accumulator) referenceThresholdTieVector(tv *Vector) *Vector {
	if tv.Dim() != a.d {
		panic("bitvec: tie vector dimension mismatch")
	}
	v := New(a.d)
	for i, c := range a.counts {
		switch {
		case c > 0:
			v.setBit(i)
		case c == 0:
			if tv.Bit(i) == 1 {
				v.setBit(i)
			}
		}
	}
	return v
}

// referenceMajority bundles through an integer accumulator — the original
// Majority implementation and the spec for the carry-save-adder fast path.
func referenceMajority(vs []*Vector, tie TieBreak, src Source) *Vector {
	if len(vs) == 0 {
		panic("bitvec: Majority of zero vectors")
	}
	acc := NewAccumulator(vs[0].Dim())
	for _, v := range vs {
		acc.referenceAddWeighted(v, 1)
	}
	return acc.referenceThreshold(tie, src)
}

// referenceHammingDistance is the per-bit distance loop — the spec for
// HammingDistance, DistanceBounded and the pruned nearest scans.
func referenceHammingDistance(a, b *Vector) int {
	if a.Dim() != b.Dim() {
		panic("bitvec: dimension mismatch")
	}
	n := 0
	for i := 0; i < a.d; i++ {
		if a.Bit(i) != b.Bit(i) {
			n++
		}
	}
	return n
}

// referenceNearestPruned is the per-bit spec for NearestPruned: full
// distances, strict improvement over the running bound, lowest index wins
// ties.
func referenceNearestPruned(q *Vector, vs []*Vector, bound int) (idx, hd int) {
	best, bestIdx := bound, -1
	for i, v := range vs {
		if n := referenceHammingDistance(q, v); n < best {
			best, bestIdx = n, i
		}
	}
	return bestIdx, best
}

// referenceRotateBits is the per-bit cyclic rotation: output bit
// (i+k) mod d equals input bit i. k must already be reduced to [0, d).
func (v *Vector) referenceRotateBits(k int) *Vector {
	r := New(v.d)
	if k == 0 {
		copy(r.words, v.words)
		return r
	}
	for i := 0; i < v.d; i++ {
		if v.words[i>>6]>>(uint(i)&63)&1 == 1 {
			j := i + k
			if j >= v.d {
				j -= v.d
			}
			r.setBit(j)
		}
	}
	return r
}
