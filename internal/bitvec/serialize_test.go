package bitvec

import (
	"bytes"
	"io"
	"testing"
)

func TestVectorSerializeRoundTrip(t *testing.T) {
	src := newTestSource(81)
	for _, d := range []int{1, 63, 64, 65, 1000, 10000} {
		v := Random(d, src)
		var buf bytes.Buffer
		n, err := v.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("d=%d: WriteTo reported %d bytes, wrote %d", d, n, buf.Len())
		}
		got, err := ReadVector(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v) {
			t.Errorf("d=%d: round trip mismatch", d)
		}
	}
}

func TestVectorMarshalBinaryRoundTrip(t *testing.T) {
	src := newTestSource(82)
	v := Random(777, src)
	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Vector
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Error("MarshalBinary round trip mismatch")
	}
}

func TestReadVectorRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE\x01\x00\x00\x00\x40\x00\x00\x00\x00\x00\x00\x00"),
		"truncated": func() []byte {
			var buf bytes.Buffer
			v := Random(128, newTestSource(83))
			if _, err := v.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:20]
		}(),
	}
	for name, data := range cases {
		if _, err := ReadVector(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: garbage accepted", name)
		}
	}
}

func TestReadVectorRejectsBadVersionAndDimension(t *testing.T) {
	var buf bytes.Buffer
	v := Random(64, newTestSource(84))
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	badVer := append([]byte{}, data...)
	badVer[4] = 99
	if _, err := ReadVector(bytes.NewReader(badVer)); err == nil {
		t.Error("bad version accepted")
	}

	badDim := append([]byte{}, data...)
	for i := 8; i < 16; i++ {
		badDim[i] = 0
	}
	if _, err := ReadVector(bytes.NewReader(badDim)); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestReadVectorRejectsTailBits(t *testing.T) {
	var buf bytes.Buffer
	v := Random(65, newTestSource(85)) // one tail word with 63 invalid bits
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] |= 0x80 // set the highest (invalid) bit of the tail word
	if _, err := ReadVector(bytes.NewReader(data)); err == nil {
		t.Error("corrupt tail accepted")
	}
}

func TestAccumulatorSerializeRoundTrip(t *testing.T) {
	src := newTestSource(91)
	for _, d := range []int{1, 63, 64, 65, 1000} {
		a := NewAccumulator(d)
		for i := 0; i < 7; i++ {
			a.Add(Random(d, src))
		}
		a.Sub(Random(d, src)) // negative counters and n != adds
		var buf bytes.Buffer
		n, err := a.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("d=%d: WriteTo reported %d bytes, wrote %d", d, n, buf.Len())
		}
		got, err := ReadAccumulator(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dim() != d || got.N() != a.N() {
			t.Fatalf("d=%d: shape (%d,%d), want (%d,%d)", d, got.Dim(), got.N(), d, a.N())
		}
		for i, c := range a.Counts() {
			if got.Counts()[i] != c {
				t.Fatalf("d=%d: counter %d is %d, want %d", d, i, got.Counts()[i], c)
			}
		}
		// The restored state must keep training identically: same addition,
		// same threshold output.
		extra := Random(d, newTestSource(int64(d)))
		a.Add(extra)
		got.Add(extra)
		tv := Random(d, newTestSource(int64(d)+1))
		if !a.ThresholdTieVector(tv).Equal(got.ThresholdTieVector(tv)) {
			t.Errorf("d=%d: restored accumulator diverged after continued training", d)
		}
	}
}

func TestReadAccumulatorRejectsGarbage(t *testing.T) {
	for _, raw := range [][]byte{
		nil,
		[]byte("HACCxxxx"),
		append([]byte("HVEC"), make([]byte, 20)...), // wrong magic
	} {
		if _, err := ReadAccumulator(bytes.NewReader(raw)); err == nil {
			t.Errorf("garbage %q accepted", raw)
		}
	}
	// Truncated counts section.
	var buf bytes.Buffer
	a := NewAccumulator(100)
	a.Add(Random(100, newTestSource(5)))
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAccumulator(bytes.NewReader(buf.Bytes()[:buf.Len()-10])); err == nil {
		t.Error("truncated accumulator stream accepted")
	}
}

func TestSliceReaderSemantics(t *testing.T) {
	r := &sliceReader{data: []byte{1, 2, 3}}
	p := make([]byte, 2)
	n, err := r.Read(p)
	if n != 2 || err != nil {
		t.Fatalf("first read: %d, %v", n, err)
	}
	n, err = r.Read(p)
	if n != 1 || err != nil {
		t.Fatalf("second read: %d, %v", n, err)
	}
	if _, err := r.Read(p); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}
