package bitvec

// Fuzz harnesses pinning the threshold-pruned kernels (pruned.go) against
// the per-bit references in reference.go. Dimensions are derived from the
// fuzzed inputs so non-64-multiple word tails are exercised constantly; the
// seed corpus under testdata/fuzz/ checks in the word-boundary cases
// (d = 1, 63..65, 127..129) plus representative bounds.

import "testing"

// fuzzDim maps a fuzzed uint16 onto [1, 1025], hitting every word-tail
// residue class.
func fuzzDim(raw uint16) int { return int(raw)%1025 + 1 }

// vecFromBytes builds a d-bit vector by cycling the given bytes (an empty
// slice yields the zero vector), offset so distinct offsets give distinct
// vectors from one pool.
func vecFromBytes(d int, data []byte, offset int) *Vector {
	v := New(d)
	if len(data) == 0 {
		return v
	}
	for i := 0; i < d; i++ {
		byteIdx := (offset + i/8) % len(data)
		if data[byteIdx]>>(uint(i)&7)&1 == 1 {
			v.setBit(i)
		}
	}
	return v
}

func FuzzDistanceBounded(f *testing.F) {
	f.Add([]byte{0xff}, []byte{0x00}, uint16(0), 0)                      // d=1, tight bound
	f.Add([]byte{0xaa, 0x55}, []byte{0x55, 0xaa}, uint16(62), 31)        // d=63
	f.Add([]byte("seed"), []byte("corn"), uint16(63), 64)                // d=64
	f.Add([]byte{0x01}, []byte{0x80}, uint16(64), -1)                    // d=65, negative bound
	f.Add([]byte{0xf0, 0x0f, 0x33}, []byte{}, uint16(126), 127)          // d=127 vs zero vector
	f.Add([]byte{1, 2, 3, 4, 5}, []byte{5, 4, 3, 2, 1}, uint16(128), 60) // d=129
	f.Fuzz(func(t *testing.T, ab, bb []byte, dRaw uint16, bound int) {
		d := fuzzDim(dRaw)
		a := vecFromBytes(d, ab, 0)
		b := vecFromBytes(d, bb, 0)
		want := referenceHammingDistance(a, b)
		hd, within := DistanceBounded(a, b, bound)
		if within != (want <= bound) {
			t.Fatalf("d=%d bound=%d: within=%v but reference distance %d", d, bound, within, want)
		}
		if within && hd != want {
			t.Fatalf("d=%d bound=%d: hd=%d, reference %d", d, bound, hd, want)
		}
		if !within && hd <= bound {
			t.Fatalf("d=%d bound=%d: abandoned at %d, not past the bound", d, bound, hd)
		}
	})
}

func FuzzNearestPruned(f *testing.F) {
	f.Add([]byte{0xde, 0xad}, []byte{0xbe, 0xef, 0x01, 0x42}, uint16(62), uint8(5), 20) // d=63
	f.Add([]byte("query"), []byte("candidates!"), uint16(63), uint8(1), 64)             // d=64
	f.Add([]byte{0x00}, []byte{0xff, 0x00, 0xf0}, uint16(64), uint8(9), 0)              // d=65, bound 0
	f.Add([]byte{0x11, 0x22, 0x33}, []byte{}, uint16(128), uint8(3), 1000)              // d=129, zero candidates pool
	f.Add([]byte{7}, []byte{7, 7, 9}, uint16(999), uint8(16), 500)                      // large odd d, identical-ish
	f.Fuzz(func(t *testing.T, qb, pool []byte, dRaw uint16, nRaw uint8, bound int) {
		d := fuzzDim(dRaw)
		q := vecFromBytes(d, qb, 0)
		n := int(nRaw)%16 + 1
		vs := make([]*Vector, n)
		for i := range vs {
			vs[i] = vecFromBytes(d, pool, i)
		}
		gi, gh := NearestPruned(q, vs, bound)
		wi, wh := referenceNearestPruned(q, vs, bound)
		if gi != wi || gh != wh {
			t.Fatalf("d=%d n=%d bound=%d: got (%d,%d), reference (%d,%d)", d, n, bound, gi, gh, wi, wh)
		}
		// Cross-kernel agreement: with bound d+1 the pruned scan must equal
		// the plain fused kernel.
		ni, nh := Nearest(q, vs)
		pi, ph := NearestPruned(q, vs, d+1)
		if ni != pi || nh != ph {
			t.Fatalf("d=%d n=%d: Nearest (%d,%d) != NearestPruned full bound (%d,%d)", d, n, ni, nh, pi, ph)
		}
	})
}
