// Package bitvec implements dense binary hypervectors packed into 64-bit
// words, together with the three HDC operations the paper relies on:
// binding (element-wise XOR), bundling (element-wise majority) and
// permutation (cyclic shift). All operations are dimension-independent and
// allocation-conscious.
//
// Every hot path is a word-parallel kernel over the packed representation,
// never a per-bit loop:
//
//   - Binding and distance (XOR, popcount) are straight word loops.
//   - Bundling accumulation (Accumulator.Add/Sub/AddWeighted) extracts 64
//     bits per load and updates the bipolar counters branch-free — random
//     hypervector bits make branches mispredict half the time.
//   - Thresholding (Threshold, ThresholdTieVector) packs output words in
//     registers with sign arithmetic, with a dedicated kernel per tie mode.
//   - Majority over up to 64 operands runs a bit-sliced carry-save adder
//     (majorityCSA) that counts all 64 positions of a word simultaneously
//     and never materializes integer counters.
//   - Rotation (RotateBits, Rotate) is two d-bit word shifts, O(d/64) for
//     any dimension including non-multiples of 64.
//   - Nearest-neighbor search (Nearest, NearestInto, NearestXor,
//     DistanceMany, XorDistance, WithinDistance in nearest.go) fuses
//     bind/compare/argmin into allocation-free scans with early exit.
//
// The per-bit originals are kept in reference.go as the spec the kernels
// are differential-tested against (kernels_test.go) — every kernel is
// bit-identical to its reference, including random tie-coin consumption.
//
// A Vector is a point in H = {0,1}^d. The zero value is not usable; create
// vectors with New, NewFromBits or Random.
package bitvec

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a binary hypervector of a fixed dimension d, packed
// little-endian into 64-bit words: bit i of the vector is bit (i%64) of
// word i/64. Bits beyond d in the final word are always zero; every
// operation maintains that invariant so popcount-based distances stay exact.
type Vector struct {
	d     int
	words []uint64
}

// wordsFor returns the number of 64-bit words needed for d bits.
func wordsFor(d int) int { return (d + 63) / 64 }

// New returns the all-zeros vector of dimension d. It panics if d <= 0;
// a zero- or negative-dimensional hyperspace is a programming error, not a
// runtime condition.
func New(d int) *Vector {
	if d <= 0 {
		panic(fmt.Sprintf("bitvec: dimension must be positive, got %d", d))
	}
	return &Vector{d: d, words: make([]uint64, wordsFor(d))}
}

// NewFromBits builds a vector from an explicit bit slice, mostly useful in
// tests and examples. Values other than 0 are treated as 1.
func NewFromBits(bitsIn []int) *Vector {
	v := New(len(bitsIn))
	for i, b := range bitsIn {
		if b != 0 {
			v.setBit(i)
		}
	}
	return v
}

// NewFromWords builds a vector of dimension d that adopts (does not copy)
// the given backing words. It returns an error if the slice length does not
// match the dimension or if tail bits beyond d are set.
func NewFromWords(d int, words []uint64) (*Vector, error) {
	if d <= 0 {
		return nil, errors.New("bitvec: dimension must be positive")
	}
	if len(words) != wordsFor(d) {
		return nil, fmt.Errorf("bitvec: got %d words, need %d for d=%d", len(words), wordsFor(d), d)
	}
	v := &Vector{d: d, words: words}
	if tail := v.tailMask(); tail != ^uint64(0) && words[len(words)-1]&^tail != 0 {
		return nil, errors.New("bitvec: tail bits beyond dimension are set")
	}
	return v, nil
}

// tailMask returns the mask of valid bits in the final word.
func (v *Vector) tailMask() uint64 {
	r := v.d % 64
	if r == 0 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(r)) - 1
}

// clearTail zeroes the invalid bits of the final word.
func (v *Vector) clearTail() { v.words[len(v.words)-1] &= v.tailMask() }

// Dim returns the dimension d of the hyperspace the vector lives in.
func (v *Vector) Dim() int { return v.d }

// Words exposes the packed backing words (not a copy). Callers must not set
// bits beyond the dimension.
func (v *Vector) Words() []uint64 { return v.words }

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := New(v.d)
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the contents of src. Dimensions must match.
func (v *Vector) CopyFrom(src *Vector) {
	v.mustMatch(src)
	copy(v.words, src.words)
}

// Bit returns bit i as 0 or 1. It panics when i is out of range.
func (v *Vector) Bit(i int) int {
	v.check(i)
	return int(v.words[i>>6]>>(uint(i)&63)) & 1
}

// SetBit sets bit i to b (0 or 1; nonzero means 1).
func (v *Vector) SetBit(i int, b int) {
	v.check(i)
	if b != 0 {
		v.setBit(i)
	} else {
		v.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// FlipBit inverts bit i.
func (v *Vector) FlipBit(i int) {
	v.check(i)
	v.words[i>>6] ^= 1 << (uint(i) & 63)
}

func (v *Vector) setBit(i int) { v.words[i>>6] |= 1 << (uint(i) & 63) }

func (v *Vector) check(i int) {
	if i < 0 || i >= v.d {
		panic(fmt.Sprintf("bitvec: bit index %d out of range [0,%d)", i, v.d))
	}
}

func (v *Vector) mustMatch(o *Vector) {
	if v.d != o.d {
		panic(fmt.Sprintf("bitvec: dimension mismatch %d vs %d", v.d, o.d))
	}
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether v and o are identical vectors of the same dimension.
func (v *Vector) Equal(o *Vector) bool {
	if v.d != o.d {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Xor returns the binding v ⊗ o as a new vector. Binding associates
// information: the result is dissimilar to both operands, is commutative,
// distributes over bundling, and is its own inverse (a ⊗ (a ⊗ b) = b).
func (v *Vector) Xor(o *Vector) *Vector {
	v.mustMatch(o)
	r := New(v.d)
	for i := range v.words {
		r.words[i] = v.words[i] ^ o.words[i]
	}
	return r
}

// XorInto stores v ⊗ o into dst (which may alias v or o) and returns dst.
func (v *Vector) XorInto(o, dst *Vector) *Vector {
	v.mustMatch(o)
	v.mustMatch(dst)
	for i := range v.words {
		dst.words[i] = v.words[i] ^ o.words[i]
	}
	return dst
}

// XorInPlace sets v = v ⊗ o and returns v.
func (v *Vector) XorInPlace(o *Vector) *Vector { return v.XorInto(o, v) }

// Not returns the complement of v as a new vector.
func (v *Vector) Not() *Vector {
	r := New(v.d)
	for i := range v.words {
		r.words[i] = ^v.words[i]
	}
	r.clearTail()
	return r
}

// HammingDistance returns the number of differing bits between v and o.
func (v *Vector) HammingDistance(o *Vector) int {
	v.mustMatch(o)
	n := 0
	for i := range v.words {
		n += bits.OnesCount64(v.words[i] ^ o.words[i])
	}
	return n
}

// Distance returns the normalized Hamming distance δ ∈ [0,1], the metric
// the paper uses throughout.
func (v *Vector) Distance(o *Vector) float64 {
	return float64(v.HammingDistance(o)) / float64(v.d)
}

// Similarity returns 1 − δ(v, o).
func (v *Vector) Similarity(o *Vector) float64 { return 1 - v.Distance(o) }

// RotateBits returns the cyclic-shift permutation Π^k(v) as a new vector:
// output bit (i+k) mod d equals input bit i. Negative k rotates the other
// way; k is reduced modulo d. The rotation runs in O(d/64) for any
// dimension: it is the OR of a d-bit left shift by k (the unwrapped bits)
// and a d-bit right shift by d−k (the wrapped bits), each a straight word
// loop. Sequence and n-gram encoders call this once per symbol, so it is a
// genuine hot path.
func (v *Vector) RotateBits(k int) *Vector {
	k %= v.d
	if k < 0 {
		k += v.d
	}
	r := New(v.d)
	if k == 0 {
		copy(r.words, v.words)
		return r
	}
	v.shlOrInto(r, k)
	v.shrOrInto(r, v.d-k)
	r.clearTail()
	return r
}

// shlOrInto ORs v<<s (a d-bit left shift, bits shifted beyond d dropped)
// into dst. s must be in [1, d).
func (v *Vector) shlOrInto(dst *Vector, s int) {
	ws, bs := s>>6, uint(s&63)
	words := v.words
	if bs == 0 {
		for i := len(words) - 1; i >= ws; i-- {
			dst.words[i] |= words[i-ws]
		}
		return
	}
	inv := 64 - bs
	for i := len(words) - 1; i > ws; i-- {
		dst.words[i] |= words[i-ws]<<bs | words[i-ws-1]>>inv
	}
	dst.words[ws] |= words[0] << bs
}

// shrOrInto ORs v>>s (a d-bit right shift) into dst. s must be in [1, d);
// the tail bits of v beyond d are zero, so no masking is needed.
func (v *Vector) shrOrInto(dst *Vector, s int) {
	ws, bs := s>>6, uint(s&63)
	words := v.words
	n := len(words)
	if bs == 0 {
		for i := 0; i < n-ws; i++ {
			dst.words[i] |= words[i+ws]
		}
		return
	}
	inv := 64 - bs
	for i := 0; i < n-ws-1; i++ {
		dst.words[i] |= words[i+ws]>>bs | words[i+ws+1]<<inv
	}
	dst.words[n-ws-1] |= words[n-1] >> bs
}

// RotateWords returns a permutation that cyclically rotates whole 64-bit
// words by k word positions. It is not the exact bit-rotation Π but is a
// valid fixed permutation of coordinates when d is a multiple of 64, and is
// roughly 64× faster; sequence encoders use it on hot paths. It panics when
// d is not a multiple of 64.
func (v *Vector) RotateWords(k int) *Vector {
	if v.d%64 != 0 {
		panic("bitvec: RotateWords requires d to be a multiple of 64")
	}
	n := len(v.words)
	k %= n
	if k < 0 {
		k += n
	}
	r := New(v.d)
	copy(r.words[k:], v.words[:n-k])
	copy(r.words[:k], v.words[n-k:])
	return r
}

// String renders the vector as a 0/1 string, least-significant bit first,
// truncated with an ellipsis beyond 64 bits; meant for debugging.
func (v *Vector) String() string {
	var b strings.Builder
	n := v.d
	truncated := false
	if n > 64 {
		n = 64
		truncated = true
	}
	for i := 0; i < n; i++ {
		if v.Bit(i) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	if truncated {
		fmt.Fprintf(&b, "… (d=%d)", v.d)
	}
	return b.String()
}
