package bitvec

import "math/bits"

// Threshold-pruned Hamming kernels. The fused scans in nearest.go abandon a
// candidate once it exceeds the best distance seen so far; the kernels here
// additionally let the CALLER supply the bound. Candidate-generation indexes
// (internal/index) depend on that: after a sketch pass has produced a short
// candidate list and a provisional best, the exact re-rank only ever needs
// "is this candidate strictly better than what I already have", which in
// high dimension is answered within the first few words for almost every
// candidate — pairwise Hamming distances concentrate tightly around d/2, so
// a running popcount crosses a below-typical bound long before the scan
// finishes.

// DistanceBounded computes the Hamming distance between a and b, bailing
// out of the word loop as soon as the running distance exceeds bound. When
// the true distance is at most bound it returns (distance, true); otherwise
// it returns (partial, false) where partial is the running count at the
// word that crossed the bound — a value strictly greater than bound but NOT
// the true distance. A negative bound always returns (partial, false).
func DistanceBounded(a, b *Vector, bound int) (hd int, within bool) {
	a.mustMatch(b)
	bw := b.words
	n := 0
	for i, w := range a.words {
		n += bits.OnesCount64(w ^ bw[i])
		if n > bound {
			return n, false
		}
	}
	return n, true
}

// NearestPruned scans vs for the vector nearest to q among those with
// Hamming distance strictly below bound, returning its index and distance.
// Ties resolve to the lowest index; when no candidate beats the bound it
// returns (-1, bound). NearestPruned(q, vs, q.Dim()+1) is exactly Nearest.
// Unlike Nearest it accepts an empty candidate list (returning -1, bound).
func NearestPruned(q *Vector, vs []*Vector, bound int) (idx, hd int) {
	qw := q.words
	best, bestIdx := bound, -1
	for i, v := range vs {
		q.mustMatch(v)
		n := 0
		for j, w := range v.words {
			n += bits.OnesCount64(qw[j] ^ w)
			if n >= best {
				break
			}
		}
		if n < best {
			best, bestIdx = n, i
		}
	}
	return bestIdx, best
}
