package bitvec

// Differential tests pinning the word-parallel kernels against the per-bit
// reference implementations in reference.go, across dimensions that are
// deliberately not multiples of 64 (plus the aligned cases), arbitrary
// weights, every tie mode, and identical random sources on both sides.

import (
	"math"
	"math/rand"
	"testing"
)

// kernelDims stresses word boundaries: single-word, exact multiples, one
// over/under, and large odd dimensions like the paper's d = 10000.
var kernelDims = []int{1, 2, 63, 64, 65, 100, 127, 128, 129, 191, 192, 193, 777, 1000, 4096, 10000, 10007}

func randomCounts(d int, r *rand.Rand) *Accumulator {
	a := NewAccumulator(d)
	for i := range a.counts {
		// Small range so zeros (ties) occur often.
		a.counts[i] = int32(r.Intn(7) - 3)
	}
	return a
}

func TestDifferentialAddWeighted(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for _, d := range kernelDims {
		for _, w := range []int32{1, -1, 2, -2, 7, -13, 1 << 20} {
			v := Random(d, newTestSource(r.Int63()))
			fast := randomCounts(d, rand.New(rand.NewSource(55)))
			ref := NewAccumulator(d)
			copy(ref.counts, fast.counts)
			ref.n = fast.n
			fast.addWeighted(v, w)
			ref.referenceAddWeighted(v, w)
			if fast.n != ref.n {
				t.Fatalf("d=%d w=%d: n %d vs %d", d, w, fast.n, ref.n)
			}
			for i := range ref.counts {
				if fast.counts[i] != ref.counts[i] {
					t.Fatalf("d=%d w=%d: count[%d] = %d, reference %d", d, w, i, fast.counts[i], ref.counts[i])
				}
			}
		}
	}
}

func TestAddWeightedRejectsOverflowingWeight(t *testing.T) {
	weights := []int{math.MinInt32} // −w wraps; the sign kernels cannot classify it
	if ^uint(0)>>32 != 0 {
		// Out-of-int32 weights only exist on 64-bit ints; build them from a
		// non-constant so the expression also type-checks under GOARCH=386.
		big := int64(1) << 40
		weights = append(weights, int(big), int(-big))
	}
	for _, w := range weights {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddWeighted accepted unsafe weight %d", w)
				}
			}()
			NewAccumulator(8).AddWeighted(New(8), w)
		}()
	}
	// The extremes that do fit the counters are accepted.
	NewAccumulator(8).AddWeighted(New(8), math.MaxInt32)
	NewAccumulator(8).AddWeighted(New(8), math.MinInt32+1)
}

func TestThresholdUnknownTieBreakActsLikeTieZero(t *testing.T) {
	acc := NewAccumulator(130)
	v := Random(130, newTestSource(21))
	acc.Add(v)
	acc.Add(v.Not()) // every count zero → every dimension tied
	got := acc.Threshold(TieBreak(99), nil)
	if got.OnesCount() != 0 {
		t.Errorf("unknown TieBreak resolved ties to 1s: %d set bits", got.OnesCount())
	}
	// Majority must agree between the CSA path and the accumulator
	// fallback for unknown tie values too.
	vs := []*Vector{v, v.Not()}
	if !Majority(vs, TieBreak(99), nil).Equal(referenceMajority(vs, TieZero, nil)) {
		t.Error("CSA Majority diverges from reference for unknown TieBreak")
	}
	big := make([]*Vector, csaMaxOperands+2)
	for i := range big {
		if i%2 == 0 {
			big[i] = v
		} else {
			big[i] = v.Not()
		}
	}
	if !Majority(big, TieBreak(99), nil).Equal(referenceMajority(big, TieZero, nil)) {
		t.Error("fallback Majority diverges from reference for unknown TieBreak")
	}
}

func TestDifferentialThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	for _, d := range kernelDims {
		for _, tie := range []TieBreak{TieZero, TieOne, TieRandom} {
			acc := randomCounts(d, r)
			ref := NewAccumulator(d)
			copy(ref.counts, acc.counts)
			// Identical sources on both sides so TieRandom draws the same
			// coins; nil elsewhere to prove they are not consulted.
			var srcA, srcB Source
			if tie == TieRandom {
				srcA, srcB = newTestSource(7), newTestSource(7)
			}
			got := acc.Threshold(tie, srcA)
			want := ref.referenceThreshold(tie, srcB)
			if !got.Equal(want) {
				t.Fatalf("d=%d tie=%v: word-parallel Threshold diverges from reference", d, tie)
			}
		}
	}
}

func TestDifferentialThresholdTieVector(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for _, d := range kernelDims {
		acc := randomCounts(d, r)
		ref := NewAccumulator(d)
		copy(ref.counts, acc.counts)
		tv := Random(d, newTestSource(9))
		if got, want := acc.ThresholdTieVector(tv), ref.referenceThresholdTieVector(tv); !got.Equal(want) {
			t.Fatalf("d=%d: word-parallel ThresholdTieVector diverges from reference", d)
		}
	}
}

func TestDifferentialMajorityCSA(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for _, d := range []int{1, 63, 64, 65, 129, 777, 1000} {
		for k := 1; k <= 12; k++ {
			vs := make([]*Vector, k)
			for i := range vs {
				vs[i] = Random(d, newTestSource(r.Int63()))
			}
			for _, tie := range []TieBreak{TieZero, TieOne, TieRandom} {
				var srcA, srcB Source
				if tie == TieRandom {
					srcA, srcB = newTestSource(11), newTestSource(11)
				}
				got := Majority(vs, tie, srcA)
				want := referenceMajority(vs, tie, srcB)
				if !got.Equal(want) {
					t.Fatalf("d=%d k=%d tie=%v: CSA Majority diverges from reference", d, k, tie)
				}
			}
		}
	}
}

func TestDifferentialMajorityCSABoundaryOperandCounts(t *testing.T) {
	// Exactly at and beyond the CSA operand limit, including the
	// accumulator fallback, with ties forced by complementary pairs.
	r := rand.New(rand.NewSource(505))
	d := 321
	for _, k := range []int{csaMaxOperands - 1, csaMaxOperands, csaMaxOperands + 1, csaMaxOperands + 6} {
		vs := make([]*Vector, 0, k+1)
		for len(vs)+1 < k {
			v := Random(d, newTestSource(r.Int63()))
			vs = append(vs, v, v.Not())
		}
		for len(vs) < k {
			vs = append(vs, Random(d, newTestSource(r.Int63())))
		}
		for _, tie := range []TieBreak{TieZero, TieOne, TieRandom} {
			var srcA, srcB Source
			if tie == TieRandom {
				srcA, srcB = newTestSource(13), newTestSource(13)
			}
			got := Majority(vs, tie, srcA)
			want := referenceMajority(vs, tie, srcB)
			if !got.Equal(want) {
				t.Fatalf("k=%d tie=%v: Majority diverges from reference at CSA boundary", k, tie)
			}
		}
	}
}

func TestDifferentialRotateBits(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	for _, d := range kernelDims {
		v := Random(d, newTestSource(r.Int63()))
		ks := []int{0, 1, 2, 31, 32, 33, 63, 64, 65, 127, 128, d - 1, d / 2, d, d + 7, -1, -63, -d}
		for i := 0; i < 6; i++ {
			ks = append(ks, r.Intn(3*d)-d)
		}
		for _, k := range ks {
			kr := ((k % d) + d) % d
			got := v.RotateBits(k)
			want := v.referenceRotateBits(kr)
			if !got.Equal(want) {
				t.Fatalf("d=%d k=%d: word-parallel RotateBits diverges from reference", d, k)
			}
			if fast := v.Rotate(k); !fast.Equal(want) {
				t.Fatalf("d=%d k=%d: Rotate dispatch diverges from reference", d, k)
			}
		}
	}
}

func TestRotateBitsRoundTripUnaligned(t *testing.T) {
	src := newTestSource(707)
	for _, d := range []int{65, 129, 10000} {
		v := Random(d, src)
		for _, k := range []int{1, 17, 64, d - 1} {
			if !v.RotateBits(k).RotateBits(-k).Equal(v) {
				t.Fatalf("d=%d k=%d: rotate round trip not identity", d, k)
			}
		}
	}
}

func TestNearestKernels(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	for _, d := range []int{1, 63, 64, 65, 500, 10000} {
		q := Random(d, newTestSource(r.Int63()))
		vs := make([]*Vector, 20)
		for i := range vs {
			vs[i] = Random(d, newTestSource(r.Int63()))
		}
		// Plant an exact duplicate of the winner later in the list to pin
		// tie-to-lowest-index behavior.
		wantIdx, wantHD := 0, d+1
		for i, v := range vs {
			if hd := q.HammingDistance(v); hd < wantHD {
				wantIdx, wantHD = i, hd
			}
		}
		vs = append(vs, vs[wantIdx].Clone())
		idx, hd := Nearest(q, vs)
		if idx != wantIdx || hd != wantHD {
			t.Fatalf("d=%d: Nearest = (%d,%d), want (%d,%d)", d, idx, hd, wantIdx, wantHD)
		}
		dst := DistanceMany(q, vs, nil)
		for i, v := range vs {
			if dst[i] != q.HammingDistance(v) {
				t.Fatalf("d=%d: DistanceMany[%d] = %d, want %d", d, i, dst[i], q.HammingDistance(v))
			}
		}
		out := New(d)
		if idx2, _ := NearestInto(q, vs, out); idx2 != wantIdx || !out.Equal(vs[wantIdx]) {
			t.Fatalf("d=%d: NearestInto did not copy the winner", d)
		}
	}
}

func TestXorDistanceMatchesMaterializedBinding(t *testing.T) {
	r := rand.New(rand.NewSource(909))
	for _, d := range []int{63, 64, 65, 1000} {
		x := Random(d, newTestSource(r.Int63()))
		y := Random(d, newTestSource(r.Int63()))
		vs := make([]*Vector, 9)
		for i := range vs {
			vs[i] = Random(d, newTestSource(r.Int63()))
		}
		bound := x.Xor(y)
		for _, z := range vs {
			if XorDistance(x, y, z) != bound.HammingDistance(z) {
				t.Fatalf("d=%d: XorDistance diverges from materialized binding", d)
			}
		}
		gotIdx, gotHD := NearestXor(x, y, vs)
		wantIdx, wantHD := Nearest(bound, vs)
		if gotIdx != wantIdx || gotHD != wantHD {
			t.Fatalf("d=%d: NearestXor = (%d,%d), want (%d,%d)", d, gotIdx, gotHD, wantIdx, wantHD)
		}
	}
}

func TestWithinDistance(t *testing.T) {
	src := newTestSource(1010)
	for _, d := range []int{64, 65, 1000} {
		a := Random(d, src)
		b := Random(d, src)
		hd := a.HammingDistance(b)
		for _, r := range []int{0, hd - 1, hd, hd + 1, d} {
			if r < 0 {
				continue
			}
			if got, want := WithinDistance(a, b, r), hd <= r; got != want {
				t.Fatalf("d=%d r=%d hd=%d: WithinDistance = %v", d, r, hd, got)
			}
		}
		if !WithinDistance(a, a, 0) {
			t.Fatal("vector not within distance 0 of itself")
		}
	}
}

func BenchmarkMajorityCSA9(b *testing.B) {
	src := newTestSource(42)
	vs := make([]*Vector, 9)
	for i := range vs {
		vs[i] = Random(10000, src)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Majority(vs, TieZero, nil)
	}
}

func BenchmarkNearest64(b *testing.B) {
	src := newTestSource(43)
	q := Random(10000, src)
	vs := make([]*Vector, 64)
	for i := range vs {
		vs[i] = Random(10000, src)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Nearest(q, vs)
	}
}
