package bitvec

import (
	"fmt"
	"math/bits"
)

// Fused nearest-neighbor kernels. Prototype search, cleanup memories and
// decoders all reduce to "scan a candidate list for the smallest Hamming
// distance to a query"; doing that through Vector.Distance costs a float
// division per candidate and forbids early exit. The kernels here work on
// raw words, allocate nothing, and abandon a candidate as soon as its
// partial popcount exceeds the best distance seen so far.

// DistanceMany stores the Hamming distance from q to every vs[i] into
// dst[i] and returns dst; pass a slice of len(vs) (or nil to allocate).
func DistanceMany(q *Vector, vs []*Vector, dst []int) []int {
	if dst == nil {
		dst = make([]int, len(vs))
	}
	if len(dst) != len(vs) {
		panic(fmt.Sprintf("bitvec: DistanceMany dst length %d, want %d", len(dst), len(vs)))
	}
	qw := q.words
	for i, v := range vs {
		q.mustMatch(v)
		n := 0
		for j, w := range v.words {
			n += bits.OnesCount64(qw[j] ^ w)
		}
		dst[i] = n
	}
	return dst
}

// Nearest returns the index of the vector in vs nearest to q (ties resolve
// to the lowest index) together with its Hamming distance. It allocates
// nothing and abandons candidates early once they exceed the best distance.
// It panics on an empty candidate list or mismatched dimensions.
func Nearest(q *Vector, vs []*Vector) (idx, hd int) {
	if len(vs) == 0 {
		panic("bitvec: Nearest over zero candidates")
	}
	qw := q.words
	best, bestIdx := q.d+1, 0
	for i, v := range vs {
		q.mustMatch(v)
		n := 0
		for j, w := range v.words {
			n += bits.OnesCount64(qw[j] ^ w)
			if n >= best {
				break
			}
		}
		if n < best {
			best, bestIdx = n, i
		}
	}
	return bestIdx, best
}

// NearestInto is Nearest plus a copy of the winning vector into dst (which
// must match q's dimension); it returns the winner's index and Hamming
// distance. Cleanup memories use it to recall a denoised vector without
// exposing their internal storage.
func NearestInto(q *Vector, vs []*Vector, dst *Vector) (idx, hd int) {
	idx, hd = Nearest(q, vs)
	dst.CopyFrom(vs[idx])
	return idx, hd
}

// XorDistance returns the Hamming distance between the binding x ⊗ y and z
// without materializing the bound vector — the bind-then-compare step of
// unbinding-based decoding fused into one popcount loop.
func XorDistance(x, y, z *Vector) int {
	x.mustMatch(y)
	x.mustMatch(z)
	n := 0
	for i, w := range x.words {
		n += bits.OnesCount64(w ^ y.words[i] ^ z.words[i])
	}
	return n
}

// NearestXor returns the index in vs of the vector nearest to the binding
// x ⊗ y (ties resolve to the lowest index) and the Hamming distance, with
// the same early-exit scan as Nearest.
func NearestXor(x, y *Vector, vs []*Vector) (idx, hd int) {
	if len(vs) == 0 {
		panic("bitvec: NearestXor over zero candidates")
	}
	x.mustMatch(y)
	best, bestIdx := x.d+1, 0
	for i, v := range vs {
		x.mustMatch(v)
		n := 0
		for j, w := range v.words {
			n += bits.OnesCount64(x.words[j] ^ y.words[j] ^ w)
			if n >= best {
				break
			}
		}
		if n < best {
			best, bestIdx = n, i
		}
	}
	return bestIdx, best
}

// WithinDistance reports whether the Hamming distance between a and b is at
// most r, stopping the popcount as soon as the bound is exceeded. Sparse
// distributed memory activation scans depend on this: almost every hard
// location fails the radius test long before the last word.
func WithinDistance(a, b *Vector, r int) bool {
	a.mustMatch(b)
	n := 0
	for i, w := range a.words {
		n += bits.OnesCount64(w ^ b.words[i])
		if n > r {
			return false
		}
	}
	return true
}
