package bitvec

// Word-level cyclic rotation dispatch. RotateBits in bitvec.go is the
// general O(d/64) shift-based rotation that works for every dimension;
// this file keeps the slightly cheaper single-pass kernel for dimensions
// that are multiples of 64 (one shifted OR per output word instead of two
// passes) and the dispatcher that picks between them.

// rotateBitsFast computes the cyclic rotation by k (already reduced to
// [1, d)) for dimensions that are multiples of 64, operating on whole words
// with two shifts per output word.
func (v *Vector) rotateBitsFast(k int) *Vector {
	r := New(v.d)
	words := len(v.words)
	wordShift := k >> 6
	bitShift := uint(k & 63)
	if bitShift == 0 {
		for i := 0; i < words; i++ {
			r.words[(i+wordShift)%words] = v.words[i]
		}
		return r
	}
	inv := 64 - bitShift
	for i := 0; i < words; i++ {
		lo := v.words[i] << bitShift
		hi := v.words[i] >> inv
		r.words[(i+wordShift)%words] |= lo
		r.words[(i+wordShift+1)%words] |= hi
	}
	return r
}

// Rotate returns the cyclic-shift permutation Π^k(v): the single-pass
// word kernel when d is a multiple of 64, the general O(d/64) shift-based
// RotateBits otherwise. Both paths produce identical results (pinned
// against the per-bit reference in rotate_test.go).
func (v *Vector) Rotate(k int) *Vector {
	k %= v.d
	if k < 0 {
		k += v.d
	}
	if k == 0 {
		return v.Clone()
	}
	if v.d%64 == 0 {
		return v.rotateBitsFast(k)
	}
	return v.RotateBits(k)
}
