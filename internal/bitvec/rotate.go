package bitvec

// Word-level cyclic rotation. RotateBits in bitvec.go is the obviously
// correct bit loop; this file provides the fast path used by sequence and
// n-gram encoders on hot paths, plus the dispatcher that picks it when the
// dimension allows.

// rotateBitsFast computes the cyclic rotation by k (already reduced to
// [1, d)) for dimensions that are multiples of 64, operating on whole words
// with two shifts per output word. It is ~50× faster than the bit loop at
// d = 10000-class sizes.
func (v *Vector) rotateBitsFast(k int) *Vector {
	r := New(v.d)
	words := len(v.words)
	wordShift := k >> 6
	bitShift := uint(k & 63)
	if bitShift == 0 {
		for i := 0; i < words; i++ {
			r.words[(i+wordShift)%words] = v.words[i]
		}
		return r
	}
	inv := 64 - bitShift
	for i := 0; i < words; i++ {
		lo := v.words[i] << bitShift
		hi := v.words[i] >> inv
		r.words[(i+wordShift)%words] |= lo
		r.words[(i+wordShift+1)%words] |= hi
	}
	return r
}

// Rotate returns the cyclic-shift permutation Π^k(v), choosing the fast
// word-level path when d is a multiple of 64 and falling back to the
// general bit loop otherwise. Both paths produce identical results (tested
// exhaustively in rotate_test.go); prefer this over RotateBits in new code.
func (v *Vector) Rotate(k int) *Vector {
	k %= v.d
	if k < 0 {
		k += v.d
	}
	if k == 0 {
		return v.Clone()
	}
	if v.d%64 == 0 {
		return v.rotateBitsFast(k)
	}
	return v.RotateBits(k)
}
