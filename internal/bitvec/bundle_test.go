package bitvec

import (
	"testing"
	"testing/quick"
)

func TestMajorityOdd(t *testing.T) {
	a := NewFromBits([]int{1, 1, 0, 0, 1})
	b := NewFromBits([]int{1, 0, 1, 0, 1})
	c := NewFromBits([]int{0, 1, 1, 0, 0})
	m := Majority([]*Vector{a, b, c}, TieZero, nil)
	want := []int{1, 1, 1, 0, 1}
	for i, w := range want {
		if m.Bit(i) != w {
			t.Errorf("bit %d = %d, want %d", i, m.Bit(i), w)
		}
	}
}

func TestMajorityTieBreaks(t *testing.T) {
	a := NewFromBits([]int{1, 0})
	b := NewFromBits([]int{0, 1})
	if m := Majority([]*Vector{a, b}, TieZero, nil); m.OnesCount() != 0 {
		t.Errorf("TieZero produced ones: %v", m)
	}
	if m := Majority([]*Vector{a, b}, TieOne, nil); m.OnesCount() != 2 {
		t.Errorf("TieOne produced zeros: %v", m)
	}
	src := newTestSource(42)
	m := Majority([]*Vector{a, b}, TieRandom, src)
	if m.Dim() != 2 {
		t.Errorf("TieRandom wrong dim")
	}
}

func TestMajorityTieRandomIsFair(t *testing.T) {
	// Two complementary random vectors: every dimension ties; the resolved
	// vector should be about half ones.
	src := newTestSource(43)
	d := 10000
	a := Random(d, src)
	b := a.Not()
	m := Majority([]*Vector{a, b}, TieRandom, src)
	frac := float64(m.OnesCount()) / float64(d)
	if frac < 0.46 || frac > 0.54 {
		t.Errorf("tie coin fraction %v outside [0.46,0.54]", frac)
	}
}

func TestMajorityPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty Majority did not panic")
			}
		}()
		Majority(nil, TieZero, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("TieRandom without source did not panic")
			}
		}()
		Majority([]*Vector{New(8), New(8)}, TieRandom, nil)
	}()
}

func TestMajorityOfSingle(t *testing.T) {
	src := newTestSource(44)
	v := Random(100, src)
	if !Majority([]*Vector{v}, TieZero, nil).Equal(v) {
		t.Error("majority of one vector != that vector")
	}
}

func TestMajoritySimilarToOperands(t *testing.T) {
	// Bundling's defining property: the bundle is similar to each operand
	// (≈0.75 similarity for 3 random operands) and dissimilar to an
	// unrelated vector (≈0.5).
	src := newTestSource(45)
	d := 10000
	vs := []*Vector{Random(d, src), Random(d, src), Random(d, src)}
	m := Majority(vs, TieZero, nil)
	for i, v := range vs {
		sim := m.Similarity(v)
		if sim < 0.70 || sim > 0.80 {
			t.Errorf("operand %d similarity %v outside [0.70,0.80]", i, sim)
		}
	}
	if sim := m.Similarity(Random(d, src)); sim < 0.46 || sim > 0.54 {
		t.Errorf("unrelated similarity %v outside [0.46,0.54]", sim)
	}
}

func TestBindDistributesOverBundle(t *testing.T) {
	// c ⊗ maj(a1,a2,a3) == maj(c⊗a1, c⊗a2, c⊗a3): XOR flips the same
	// positions in every operand, so the majority commutes with binding.
	src := newTestSource(46)
	d := 512
	a1, a2, a3, c := Random(d, src), Random(d, src), Random(d, src), Random(d, src)
	left := c.Xor(Majority([]*Vector{a1, a2, a3}, TieZero, nil))
	right := Majority([]*Vector{c.Xor(a1), c.Xor(a2), c.Xor(a3)}, TieZero, nil)
	if !left.Equal(right) {
		t.Error("binding does not distribute over bundling")
	}
}

func TestAccumulatorMatchesMajority(t *testing.T) {
	src := newTestSource(47)
	d := 777
	vs := make([]*Vector, 9)
	for i := range vs {
		vs[i] = Random(d, src)
	}
	acc := NewAccumulator(d)
	for _, v := range vs {
		acc.Add(v)
	}
	if !acc.Threshold(TieZero, nil).Equal(Majority(vs, TieZero, nil)) {
		t.Error("accumulator threshold != Majority")
	}
	if acc.N() != len(vs) {
		t.Errorf("N=%d want %d", acc.N(), len(vs))
	}
}

func TestAccumulatorSubUndoesAdd(t *testing.T) {
	src := newTestSource(48)
	d := 256
	a, b, c := Random(d, src), Random(d, src), Random(d, src)
	acc := NewAccumulator(d)
	acc.Add(a)
	acc.Add(b)
	acc.Add(c)
	acc.Sub(c)
	ref := NewAccumulator(d)
	ref.Add(a)
	ref.Add(b)
	for i := range acc.Counts() {
		if acc.Counts()[i] != ref.Counts()[i] {
			t.Fatalf("count %d differs after Sub: %d vs %d", i, acc.Counts()[i], ref.Counts()[i])
		}
	}
	if acc.N() != 2 {
		t.Errorf("N=%d want 2", acc.N())
	}
}

func TestAccumulatorClone(t *testing.T) {
	src := newTestSource(51)
	d := 200
	acc := NewAccumulator(d)
	acc.Add(Random(d, src))
	acc.Add(Random(d, src))
	cp := acc.Clone()
	if cp.Dim() != d || cp.N() != acc.N() {
		t.Fatalf("clone dim/N = %d/%d, want %d/%d", cp.Dim(), cp.N(), d, acc.N())
	}
	for i := range acc.Counts() {
		if cp.Counts()[i] != acc.Counts()[i] {
			t.Fatalf("clone count %d differs", i)
		}
	}
	// Independence both ways: writes through either side must not show up
	// on the other.
	cp.Counts()[0] += 100
	if acc.Counts()[0] == cp.Counts()[0] {
		t.Fatal("clone aliases parent counters (parent saw clone write)")
	}
	acc.Counts()[1] += 100
	if cp.Counts()[1] == acc.Counts()[1] {
		t.Fatal("clone aliases parent counters (clone saw parent write)")
	}
}

func TestAccumulatorWeighted(t *testing.T) {
	src := newTestSource(49)
	d := 128
	v := Random(d, src)
	acc := NewAccumulator(d)
	acc.AddWeighted(v, 3)
	ref := NewAccumulator(d)
	ref.Add(v)
	ref.Add(v)
	ref.Add(v)
	for i := range acc.Counts() {
		if acc.Counts()[i] != ref.Counts()[i] {
			t.Fatal("AddWeighted(3) != three Adds")
		}
	}
}

func TestAccumulatorReset(t *testing.T) {
	src := newTestSource(50)
	acc := NewAccumulator(64)
	acc.Add(Random(64, src))
	acc.Reset()
	if acc.N() != 0 {
		t.Errorf("N after reset = %d", acc.N())
	}
	for _, c := range acc.Counts() {
		if c != 0 {
			t.Fatal("counts not cleared")
		}
	}
}

func TestAccumulatorThresholdTies(t *testing.T) {
	acc := NewAccumulator(4)
	a := NewFromBits([]int{1, 1, 0, 0})
	acc.Add(a)
	acc.Add(a.Not())
	// All counts zero → all ties.
	if v := acc.Threshold(TieOne, nil); v.OnesCount() != 4 {
		t.Errorf("TieOne gave %v", v)
	}
	if v := acc.Threshold(TieZero, nil); v.OnesCount() != 0 {
		t.Errorf("TieZero gave %v", v)
	}
}

func TestAccumulatorDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("accumulator dim mismatch did not panic")
		}
	}()
	NewAccumulator(64).Add(New(65))
}

func TestQuickMajorityBetweenBounds(t *testing.T) {
	// The majority's per-dimension value always equals one of the operands'
	// values when they agree.
	f := func(seedA, seedB, seedC uint16) bool {
		d := 333
		a := Random(d, newTestSource(int64(seedA)))
		b := Random(d, newTestSource(int64(seedB)))
		c := Random(d, newTestSource(int64(seedC)))
		m := Majority([]*Vector{a, b, c}, TieZero, nil)
		for i := 0; i < d; i++ {
			if a.Bit(i) == b.Bit(i) && b.Bit(i) == c.Bit(i) && m.Bit(i) != a.Bit(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAccumulatorOrderIndependent(t *testing.T) {
	f := func(seedA, seedB, seedC uint16) bool {
		d := 200
		a := Random(d, newTestSource(int64(seedA)))
		b := Random(d, newTestSource(int64(seedB)))
		c := Random(d, newTestSource(int64(seedC)))
		x := NewAccumulator(d)
		x.Add(a)
		x.Add(b)
		x.Add(c)
		y := NewAccumulator(d)
		y.Add(c)
		y.Add(a)
		y.Add(b)
		return x.Threshold(TieZero, nil).Equal(y.Threshold(TieZero, nil))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdTieVector(t *testing.T) {
	acc := NewAccumulator(4)
	a := NewFromBits([]int{1, 1, 0, 0})
	acc.Add(a)
	acc.Add(a.Not()) // all counts zero → every dimension ties
	tv := NewFromBits([]int{1, 0, 1, 0})
	got := acc.Threshold(TieZero, nil) // baseline: all zero
	if got.OnesCount() != 0 {
		t.Fatal("baseline wrong")
	}
	got = acc.ThresholdTieVector(tv)
	if !got.Equal(tv) {
		t.Errorf("all-tie threshold should copy the tie vector, got %v", got)
	}
	// Non-tied dimensions ignore the tie vector.
	acc2 := NewAccumulator(4)
	acc2.Add(a)
	if !acc2.ThresholdTieVector(tv).Equal(a) {
		t.Error("tie vector leaked into non-tied dimensions")
	}
}

func TestThresholdTieVectorDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dim mismatch did not panic")
		}
	}()
	NewAccumulator(4).ThresholdTieVector(New(5))
}

func TestThresholdTieVectorOrderIndependent(t *testing.T) {
	src := newTestSource(60)
	d := 512
	tv := Random(d, src)
	a, b := Random(d, src), Random(d, src)
	x := NewAccumulator(d)
	x.Add(a)
	x.Add(b)
	y := NewAccumulator(d)
	y.Add(b)
	y.Add(a)
	if !x.ThresholdTieVector(tv).Equal(y.ThresholdTieVector(tv)) {
		t.Error("tie-vector threshold depends on accumulation order")
	}
}
