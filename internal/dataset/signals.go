package dataset

// Extension workloads beyond the paper's three evaluation datasets, from
// the lineage the paper builds on: EMG biosignal gesture recognition
// (Rahimi et al. 2016 — where level-hypervectors were introduced) and text
// language identification (Section 3.1's symbol encoding). Both are
// synthetic for the same licensing reasons as the main workloads.

import (
	"fmt"
	"math"
	"strings"

	"hdcirc/internal/dist"
	"hdcirc/internal/rng"
)

// ---------------------------------------------------------------------------
// EMG hand-gesture windows
// ---------------------------------------------------------------------------

// EMGSample is one analysis window of multi-channel EMG amplitudes.
type EMGSample struct {
	Window [][]float64 // [time][channel] rectified amplitudes in [0, 1]
	Label  int         // gesture id
}

// EMGConfig parameterizes the synthetic EMG generator.
type EMGConfig struct {
	NumGestures     int // hand gestures (Rahimi et al. use 5)
	Channels        int // electrodes (4 in the original setup)
	WindowLen       int // samples per analysis window
	TrainPerGesture int
	TestPerGesture  int
	NoiseSD         float64 // multiplicative envelope noise
}

// DefaultEMGConfig mirrors the classic 4-channel, 5-gesture EMG setup.
func DefaultEMGConfig() EMGConfig {
	return EMGConfig{
		NumGestures:     5,
		Channels:        4,
		WindowLen:       32,
		TrainPerGesture: 30,
		TestPerGesture:  20,
		NoiseSD:         0.5,
	}
}

// EMGDataset holds train/test splits of synthetic EMG windows.
type EMGDataset struct {
	Config EMGConfig
	Train  []EMGSample
	Test   []EMGSample
}

// GenEMG synthesizes gesture windows: every gesture has a characteristic
// per-channel activation envelope (a base level plus a within-window
// modulation); observed amplitudes are the envelope under multiplicative
// noise, clamped to [0, 1]. Gestures differ in which channels co-activate —
// the muscle-synergy structure EMG classifiers exploit.
func GenEMG(cfg EMGConfig, seed uint64) *EMGDataset {
	if cfg.NumGestures <= 1 || cfg.Channels <= 0 || cfg.WindowLen <= 0 {
		panic(fmt.Sprintf("dataset: bad EMG config %+v", cfg))
	}
	layout := rng.Sub(seed, "emg/layout")
	type envelope struct{ base, amp, phase float64 }
	envs := make([][]envelope, cfg.NumGestures)
	for g := range envs {
		envs[g] = make([]envelope, cfg.Channels)
		for ch := range envs[g] {
			envs[g][ch] = envelope{
				base:  dist.Uniform(layout, 0.1, 0.8),
				amp:   dist.Uniform(layout, 0.05, 0.25),
				phase: dist.Uniform(layout, 0, 2*math.Pi),
			}
		}
	}
	gen := func(stream *rng.Stream, per int) []EMGSample {
		out := make([]EMGSample, 0, per*cfg.NumGestures)
		for g := 0; g < cfg.NumGestures; g++ {
			for s := 0; s < per; s++ {
				w := make([][]float64, cfg.WindowLen)
				for t := range w {
					w[t] = make([]float64, cfg.Channels)
					for ch := range w[t] {
						e := envs[g][ch]
						v := e.base + e.amp*math.Sin(2*math.Pi*float64(t)/float64(cfg.WindowLen)+e.phase)
						v *= 1 + cfg.NoiseSD*stream.NormFloat64()
						if v < 0 {
							v = 0
						}
						if v > 1 {
							v = 1
						}
						w[t][ch] = v
					}
				}
				out = append(out, EMGSample{Window: w, Label: g})
			}
		}
		stream.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	return &EMGDataset{
		Config: cfg,
		Train:  gen(rng.Sub(seed, "emg/train"), cfg.TrainPerGesture),
		Test:   gen(rng.Sub(seed, "emg/test"), cfg.TestPerGesture),
	}
}

// ---------------------------------------------------------------------------
// Text language identification
// ---------------------------------------------------------------------------

// TextSample is one synthetic sentence with its language label.
type TextSample struct {
	Text  string
	Label int
}

// TextConfig parameterizes the synthetic language generator.
type TextConfig struct {
	NumLanguages int
	Alphabet     int // letters per language, ≤ 26
	SentenceLen  int // characters per sentence
	TrainPerLang int
	TestPerLang  int
	Sharpness    float64 // concentration of the per-language bigram statistics; higher = more distinctive languages
}

// DefaultTextConfig gives five clearly-but-not-trivially separable
// languages.
func DefaultTextConfig() TextConfig {
	return TextConfig{
		NumLanguages: 5,
		Alphabet:     26,
		SentenceLen:  96,
		TrainPerLang: 40,
		TestPerLang:  25,
		Sharpness:    4.5,
	}
}

// TextDataset holds train/test splits of synthetic sentences.
type TextDataset struct {
	Config TextConfig
	Train  []TextSample
	Test   []TextSample
}

// GenText synthesizes sentences from per-language first-order Markov chains
// over the alphabet: each language has its own letter-transition weights
// (softmax of sharpness-scaled uniforms), so languages differ in bigram
// statistics exactly the way the n-gram encoding of Section 3.1 detects.
func GenText(cfg TextConfig, seed uint64) *TextDataset {
	if cfg.NumLanguages <= 1 || cfg.Alphabet < 2 || cfg.Alphabet > 26 || cfg.SentenceLen <= 1 {
		panic(fmt.Sprintf("dataset: bad text config %+v", cfg))
	}
	layout := rng.Sub(seed, "text/layout")
	// trans[g][prev][next] cumulative distribution per language.
	trans := make([][][]float64, cfg.NumLanguages)
	for g := range trans {
		trans[g] = make([][]float64, cfg.Alphabet)
		for prev := range trans[g] {
			weights := make([]float64, cfg.Alphabet)
			var sum float64
			for next := range weights {
				weights[next] = math.Exp(cfg.Sharpness * layout.Float64())
				sum += weights[next]
			}
			cdf := make([]float64, cfg.Alphabet)
			acc := 0.0
			for next := range weights {
				acc += weights[next] / sum
				cdf[next] = acc
			}
			cdf[cfg.Alphabet-1] = 1
			trans[g][prev] = cdf
		}
	}
	sample := func(cdf []float64, u float64) int {
		for i, c := range cdf {
			if u < c {
				return i
			}
		}
		return len(cdf) - 1
	}
	gen := func(stream *rng.Stream, per int) []TextSample {
		out := make([]TextSample, 0, per*cfg.NumLanguages)
		for g := 0; g < cfg.NumLanguages; g++ {
			for s := 0; s < per; s++ {
				var b strings.Builder
				cur := stream.Intn(cfg.Alphabet)
				b.WriteByte(byte('a' + cur))
				for i := 1; i < cfg.SentenceLen; i++ {
					cur = sample(trans[g][cur], stream.Float64())
					b.WriteByte(byte('a' + cur))
				}
				out = append(out, TextSample{Text: b.String(), Label: g})
			}
		}
		stream.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	return &TextDataset{
		Config: cfg,
		Train:  gen(rng.Sub(seed, "text/train"), cfg.TrainPerLang),
		Test:   gen(rng.Sub(seed, "text/test"), cfg.TestPerLang),
	}
}
