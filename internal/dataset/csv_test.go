package dataset

import (
	"math"
	"strings"
	"testing"
)

const beijingSample = `No,year,month,day,hour,PM2.5,TEMP,station
1,2013,3,1,0,4,-0.7,Aotizhongxin
2,2013,3,1,1,8,-1.1,Aotizhongxin
3,2013,3,1,2,7,NA,Aotizhongxin
4,2014,7,15,14,10,29.3,Aotizhongxin
`

func TestLoadBeijingCSV(t *testing.T) {
	xs, err := LoadBeijingCSV(strings.NewReader(beijingSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 3 { // the NA row is skipped
		t.Fatalf("rows = %d, want 3", len(xs))
	}
	first := xs[0]
	if first.YearIndex != 0 || first.HourOfDay != 0 || first.Temp != -0.7 {
		t.Errorf("first row wrong: %+v", first)
	}
	// March 1st = day-of-year 59 (non-leap offsets).
	if first.DayOfYear != 59 {
		t.Errorf("March 1 day-of-year = %v, want 59", first.DayOfYear)
	}
	last := xs[2]
	if last.YearIndex != 1 {
		t.Errorf("2014 year index = %d, want 1", last.YearIndex)
	}
	// July 15th = 181 + 14 = 195.
	if last.DayOfYear != 195 {
		t.Errorf("July 15 day-of-year = %v, want 195", last.DayOfYear)
	}
	if last.HourOfDay != 14 || last.Temp != 29.3 {
		t.Errorf("last row wrong: %+v", last)
	}
}

func TestLoadBeijingCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"missing column": "No,year,month,day,hour\n1,2013,3,1,0\n",
		"bad number":     "year,month,day,hour,TEMP\nxx,3,1,0,1.0\n",
		"bad date":       "year,month,day,hour,TEMP\n2013,13,1,0,1.0\n",
		"only NA":        "year,month,day,hour,TEMP\n2013,3,1,0,NA\n",
	}
	for name, data := range cases {
		if _, err := LoadBeijingCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadBeijingCSVHeaderCaseInsensitive(t *testing.T) {
	data := "YEAR,Month,DAY,Hour,Temp\n2013,3,1,5,12.5\n"
	xs, err := LoadBeijingCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if xs[0].Temp != 12.5 || xs[0].HourOfDay != 5 {
		t.Errorf("row = %+v", xs[0])
	}
}

func TestLoadOrbitCSVRadians(t *testing.T) {
	data := "mean_anomaly,power_w\n0.5,450.1\n3.14,380.2\n6.0,441\n"
	xs, err := LoadOrbitCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 3 {
		t.Fatalf("rows = %d", len(xs))
	}
	if xs[0].MeanAnomaly != 0.5 || xs[0].Power != 450.1 {
		t.Errorf("first row = %+v", xs[0])
	}
}

func TestLoadOrbitCSVDegreesHeuristic(t *testing.T) {
	data := "Anomaly(deg),Power\n90,400\n180,350\n359,420\n"
	xs, err := LoadOrbitCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(xs[0].MeanAnomaly-math.Pi/2) > 1e-9 {
		t.Errorf("90° → %v rad, want π/2", xs[0].MeanAnomaly)
	}
	if math.Abs(xs[1].MeanAnomaly-math.Pi) > 1e-9 {
		t.Errorf("180° → %v rad, want π", xs[1].MeanAnomaly)
	}
}

func TestLoadOrbitCSVSkipsAndWraps(t *testing.T) {
	data := "anomaly,power\nNA,100\n-0.5,200\n"
	xs, err := LoadOrbitCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 1 {
		t.Fatalf("rows = %d, want 1 (NA skipped)", len(xs))
	}
	if xs[0].MeanAnomaly < 0 || xs[0].MeanAnomaly >= 2*math.Pi {
		t.Errorf("negative anomaly not wrapped: %v", xs[0].MeanAnomaly)
	}
}

func TestLoadOrbitCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"no columns": "a,b\n1,2\n",
		"bad number": "anomaly,power\nxx,1\n",
		"only NA":    "anomaly,power\nNA,NA\n",
	}
	for name, data := range cases {
		if _, err := LoadOrbitCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Loaded real-format data must flow through the regression pipeline types:
// the loader output is directly consumable by SplitChronological/TempRange.
func TestLoadedDataIntegratesWithPipelineHelpers(t *testing.T) {
	xs, err := LoadBeijingCSV(strings.NewReader(beijingSample))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := TempRange(xs)
	if lo != -1.1 || hi != 29.3 {
		t.Errorf("range [%v,%v]", lo, hi)
	}
	train, test := SplitChronological(xs, 0.67)
	if len(train) != 2 || len(test) != 1 {
		t.Errorf("split %d/%d", len(train), len(test))
	}
}
