package dataset

// CSV loaders for the real evaluation datasets. The repository cannot ship
// the recordings (licensing), but users who download them can run the
// experiments on the originals:
//
//   - UCI "Beijing Multi-Site Air-Quality" per-station CSV
//     (PRSA_Data_Aotizhongxin_*.csv): columns include year, month, day,
//     hour and TEMP. LoadBeijingCSV converts rows into TempSample.
//   - A two-column mean-anomaly/power CSV for Mars Express telemetry
//     exports: LoadOrbitCSV converts rows into OrbitSample.
//
// Both loaders are tolerant of extra columns (they resolve the ones they
// need from the header), skip rows with missing values ("NA"), and report
// precise errors with line numbers otherwise.

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// cumulative days at the start of each month (non-leap; the paper's
// day-of-year proxy does not need leap-exactness).
var monthOffset = [12]int{0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334}

// LoadBeijingCSV parses a UCI Beijing air-quality station CSV into the
// chronological TempSample series used by RunTemperatureRegression. The
// header must contain year, month, day, hour and TEMP columns (any case);
// rows whose TEMP is missing are skipped.
func LoadBeijingCSV(r io.Reader) ([]TempSample, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading Beijing CSV header: %w", err)
	}
	col := indexColumns(header, "year", "month", "day", "hour", "temp")
	for name, idx := range col {
		if idx < 0 {
			return nil, fmt.Errorf("dataset: Beijing CSV missing column %q", name)
		}
	}
	var out []TempSample
	baseYear := -1
	line := 1
	for {
		line++
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: Beijing CSV line %d: %w", line, err)
		}
		tempStr := strings.TrimSpace(rec[col["temp"]])
		if tempStr == "" || strings.EqualFold(tempStr, "NA") {
			continue
		}
		year, err1 := atoiField(rec, col["year"])
		month, err2 := atoiField(rec, col["month"])
		day, err3 := atoiField(rec, col["day"])
		hour, err4 := atoiField(rec, col["hour"])
		temp, err5 := strconv.ParseFloat(tempStr, 64)
		if err := firstErr(err1, err2, err3, err4, err5); err != nil {
			return nil, fmt.Errorf("dataset: Beijing CSV line %d: %w", line, err)
		}
		if month < 1 || month > 12 || day < 1 || day > 31 || hour < 0 || hour > 23 {
			return nil, fmt.Errorf("dataset: Beijing CSV line %d: implausible date %d-%d %d:00", line, month, day, hour)
		}
		if baseYear < 0 {
			baseYear = year
		}
		out = append(out, TempSample{
			YearIndex: year - baseYear,
			DayOfYear: float64(monthOffset[month-1] + day - 1),
			HourOfDay: float64(hour),
			Temp:      temp,
		})
	}
	if len(out) == 0 {
		return nil, errors.New("dataset: Beijing CSV contains no usable rows")
	}
	return out, nil
}

// LoadOrbitCSV parses a telemetry CSV with mean-anomaly and power columns
// (header names containing "anomaly" and "power", any case; anomaly in
// radians or degrees — values beyond 2π are treated as degrees) into
// OrbitSample rows.
func LoadOrbitCSV(r io.Reader) ([]OrbitSample, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading orbit CSV header: %w", err)
	}
	anomalyCol, powerCol := -1, -1
	for i, h := range header {
		lh := strings.ToLower(strings.TrimSpace(h))
		if strings.Contains(lh, "anomaly") && anomalyCol < 0 {
			anomalyCol = i
		}
		if strings.Contains(lh, "power") && powerCol < 0 {
			powerCol = i
		}
	}
	if anomalyCol < 0 || powerCol < 0 {
		return nil, fmt.Errorf("dataset: orbit CSV needs anomaly and power columns, header %v", header)
	}
	var rows [][2]float64
	maxAnomaly := 0.0
	line := 1
	for {
		line++
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: orbit CSV line %d: %w", line, err)
		}
		aStr := strings.TrimSpace(rec[anomalyCol])
		pStr := strings.TrimSpace(rec[powerCol])
		if aStr == "" || pStr == "" || strings.EqualFold(aStr, "NA") || strings.EqualFold(pStr, "NA") {
			continue
		}
		a, err1 := strconv.ParseFloat(aStr, 64)
		p, err2 := strconv.ParseFloat(pStr, 64)
		if err := firstErr(err1, err2); err != nil {
			return nil, fmt.Errorf("dataset: orbit CSV line %d: %w", line, err)
		}
		rows = append(rows, [2]float64{a, p})
		if math.Abs(a) > maxAnomaly {
			maxAnomaly = math.Abs(a)
		}
	}
	if len(rows) == 0 {
		return nil, errors.New("dataset: orbit CSV contains no usable rows")
	}
	// Degrees vs radians heuristic: anomalies are angles in [0, 2π) or
	// [0, 360).
	scale := 1.0
	if maxAnomaly > 2*math.Pi+1e-9 {
		scale = math.Pi / 180
	}
	out := make([]OrbitSample, len(rows))
	for i, row := range rows {
		theta := math.Mod(row[0]*scale, 2*math.Pi)
		if theta < 0 {
			theta += 2 * math.Pi
		}
		out[i] = OrbitSample{MeanAnomaly: theta, Power: row[1]}
	}
	return out, nil
}

// indexColumns maps each requested (lower-case) name to its header index,
// or −1 when absent. Matching is case-insensitive on trimmed names.
func indexColumns(header []string, names ...string) map[string]int {
	out := make(map[string]int, len(names))
	for _, n := range names {
		out[n] = -1
	}
	for i, h := range header {
		lh := strings.ToLower(strings.TrimSpace(h))
		if _, want := out[lh]; want && out[lh] < 0 {
			out[lh] = i
		}
	}
	return out
}

func atoiField(rec []string, idx int) (int, error) {
	return strconv.Atoi(strings.TrimSpace(rec[idx]))
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
