// Package dataset synthesizes the three evaluation workloads of the paper.
// The originals (JIGSAWS surgical kinematics, UCI Beijing air temperature,
// ESA Mars Express power) are licensed recordings we cannot ship; each
// generator below preserves the statistical property the corresponding
// experiment probes — informative features that are *circular* (angles,
// day-of-year, hour-of-day, orbital phase), with clusters and trends that
// straddle the wrap-around point. DESIGN.md §3 records the substitutions.
//
// All generators are deterministic in (config, seed).
package dataset

import (
	"fmt"
	"math"

	"hdcirc/internal/dist"
	"hdcirc/internal/rng"
)

// ---------------------------------------------------------------------------
// Surgical gestures (JIGSAWS substitute)
// ---------------------------------------------------------------------------

// GestureSample is one kinematic observation: angular features in [0, 2π)
// and a gesture class label.
type GestureSample struct {
	Features []float64 // wrapped angles, one per kinematic variable
	Label    int       // gesture id in [0, NumGestures)
}

// GestureConfig parameterizes the synthetic surgical-gesture generator.
type GestureConfig struct {
	Task            string  // "knot-tying" | "needle-passing" | "suturing" (any label; seeds the cluster layout)
	NumGestures     int     // classes; the paper's JIGSAWS has 15
	NumFeatures     int     // kinematic variables; the paper uses 18 (two manipulators' rotation matrices)
	TrainPerGesture int     // samples per gesture in the training split ("surgeon D")
	TestPerGesture  int     // samples per gesture in the test split (other surgeons)
	KappaTrain      float64 // von Mises concentration of the training surgeon (higher = more consistent)
	KappaTest       float64 // concentration of the test surgeons (lower = sloppier)
	WrapFraction    float64 // fraction of per-feature posture templates placed near the 0/2π seam
	KappaSep        float64 // concentration of gesture means around the per-feature template; 0 = independent uniform means (maximally separated classes)
	NumTestSurgeons int     // test executions come from this many surgeons, each with a personal style offset (0 or 1 = no domain shift)
	KappaBias       float64 // concentration of each test surgeon's per-feature style offset around 0; lower = stronger domain shift
	WildFraction    float64 // probability that a test surgeon executes a feature idiosyncratically (uniform offset) — irreducible error for every encoding
}

// DefaultGestureConfig mirrors the paper's task shape: 15 gestures over 18
// angular kinematic variables.
func DefaultGestureConfig(task string) GestureConfig {
	return GestureConfig{
		Task:            task,
		NumGestures:     15,
		NumFeatures:     18,
		TrainPerGesture: 40,
		TestPerGesture:  25,
		KappaTrain:      18,
		KappaTest:       8,
		WrapFraction:    0.6,
		KappaSep:        0,
		NumTestSurgeons: 6,
		KappaBias:       30,
		WildFraction:    0.3,
	}
}

// GestureDataset holds the train/test splits of one surgical task.
type GestureDataset struct {
	Config GestureMeta
	Train  []GestureSample
	Test   []GestureSample
}

// GestureMeta is re-exported configuration metadata (kept nested
// to avoid confusion with GestureConfig's generator knobs).
type GestureMeta struct {
	Task        string
	NumGestures int
	NumFeatures int
}

// GenGestures synthesizes one surgical task. Each gesture g has a mean
// angle per feature; a WrapFraction share of those means sit within ±0.15
// rad of the 0/2π seam, which is exactly where level encodings break. The
// training split plays the paper's "surgeon D" (concentrated executions);
// the test split draws from the same means with lower concentration.
func GenGestures(cfg GestureConfig, seed uint64) *GestureDataset {
	if cfg.NumGestures <= 1 {
		panic(fmt.Sprintf("dataset: need at least 2 gestures, got %d", cfg.NumGestures))
	}
	if cfg.NumFeatures <= 0 {
		panic(fmt.Sprintf("dataset: need at least 1 feature, got %d", cfg.NumFeatures))
	}
	if cfg.KappaTrain < 0 || cfg.KappaTest < 0 {
		panic("dataset: negative concentration")
	}
	if cfg.WrapFraction < 0 || cfg.WrapFraction > 1 {
		panic(fmt.Sprintf("dataset: wrap fraction %v outside [0,1]", cfg.WrapFraction))
	}
	layout := rng.Sub(seed, "gestures/layout/"+cfg.Task)
	// Per-feature posture template: the shared arm position the gestures
	// are variations of. A WrapFraction share of templates sit near the
	// 0/2π seam, which is exactly where level encodings break.
	template := make([]float64, cfg.NumFeatures)
	for f := range template {
		if layout.Float64() < cfg.WrapFraction {
			template[f] = dist.WrapAngle(dist.Uniform(layout, -0.15, 0.15))
		} else {
			template[f] = dist.Uniform(layout, 0, 2*math.Pi)
		}
	}
	// Gesture means deviate from the template with concentration KappaSep:
	// low KappaSep separates the classes widely; high KappaSep makes them
	// genuinely confusable, as surgical sub-motions are.
	means := make([][]float64, cfg.NumGestures)
	for g := range means {
		means[g] = make([]float64, cfg.NumFeatures)
		for f := range means[g] {
			if cfg.KappaSep == 0 {
				means[g][f] = dist.Uniform(layout, 0, 2*math.Pi)
				if layout.Float64() < cfg.WrapFraction {
					means[g][f] = dist.WrapAngle(dist.Uniform(layout, -0.15, 0.15))
				}
			} else {
				means[g][f] = dist.VonMises(layout, template[f], cfg.KappaSep)
			}
		}
	}
	// gen draws `per` executions of every gesture. A non-nil bias is the
	// executing surgeon's personal style: a fixed per-feature angular
	// offset added to every gesture mean — the domain shift between the
	// training surgeon and the test surgeons.
	gen := func(stream *rng.Stream, per int, kappa float64, bias []float64) []GestureSample {
		out := make([]GestureSample, 0, per*cfg.NumGestures)
		for g := 0; g < cfg.NumGestures; g++ {
			for s := 0; s < per; s++ {
				feat := make([]float64, cfg.NumFeatures)
				for f := range feat {
					mu := means[g][f]
					if bias != nil {
						mu = dist.WrapAngle(mu + bias[f])
					}
					feat[f] = dist.VonMises(stream, mu, kappa)
				}
				out = append(out, GestureSample{Features: feat, Label: g})
			}
		}
		// Interleave classes so chronological consumers see mixed labels.
		stream.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	testStream := rng.Sub(seed, "gestures/test/"+cfg.Task)
	var test []GestureSample
	if cfg.NumTestSurgeons > 1 && cfg.KappaBias > 0 {
		per := cfg.TestPerGesture / cfg.NumTestSurgeons
		rem := cfg.TestPerGesture - per*cfg.NumTestSurgeons
		for s := 0; s < cfg.NumTestSurgeons; s++ {
			bias := make([]float64, cfg.NumFeatures)
			for f := range bias {
				if testStream.Float64() < cfg.WildFraction {
					bias[f] = dist.Uniform(testStream, 0, 2*math.Pi)
				} else {
					bias[f] = dist.VonMises(testStream, 0, cfg.KappaBias)
				}
			}
			n := per
			if s < rem {
				n++
			}
			if n == 0 {
				continue
			}
			test = append(test, gen(testStream, n, cfg.KappaTest, bias)...)
		}
		testStream.Shuffle(len(test), func(i, j int) { test[i], test[j] = test[j], test[i] })
	} else {
		test = gen(testStream, cfg.TestPerGesture, cfg.KappaTest, nil)
	}
	return &GestureDataset{
		Config: GestureMeta{Task: cfg.Task, NumGestures: cfg.NumGestures, NumFeatures: cfg.NumFeatures},
		Train:  gen(rng.Sub(seed, "gestures/train/"+cfg.Task), cfg.TrainPerGesture, cfg.KappaTrain, nil),
		Test:   test,
	}
}

// ---------------------------------------------------------------------------
// Hourly temperature series (Beijing substitute)
// ---------------------------------------------------------------------------

// TempSample is one hourly weather-station observation.
type TempSample struct {
	YearIndex int     // 0-based year since series start (level-encoded in the paper)
	DayOfYear float64 // [0, 365)
	HourOfDay float64 // [0, 24)
	Temp      float64 // °C
}

// TempConfig parameterizes the synthetic temperature series.
type TempConfig struct {
	Years         int     // series length in years (paper: ~4, Mar 2013–Feb 2017)
	HourStep      int     // sampling stride in hours (1 = hourly)
	MeanTemp      float64 // annual mean, °C
	AnnualAmp     float64 // amplitude of the seasonal sinusoid
	DiurnalAmp    float64 // amplitude of the day/night sinusoid
	PeakDay       float64 // day-of-year of the seasonal maximum
	PeakHour      float64 // hour-of-day of the diurnal maximum
	WarmingPerYr  float64 // slow trend, °C per year (the level-encoded year captures this)
	NoiseSD       float64 // AR(1) innovation standard deviation
	NoisePhi      float64 // AR(1) coefficient
	StartDayShift float64 // day-of-year of the first sample (61 ≈ March 1st, as in the paper's span)
}

// DefaultTempConfig approximates Beijing's climate shape.
func DefaultTempConfig() TempConfig {
	return TempConfig{
		Years:         4,
		HourStep:      3,
		MeanTemp:      13,
		AnnualAmp:     15,
		DiurnalAmp:    4,
		PeakDay:       197, // mid July
		PeakHour:      15,
		WarmingPerYr:  0.15,
		NoiseSD:       1.4,
		NoisePhi:      0.85,
		StartDayShift: 61,
	}
}

// GenTemperature synthesizes the chronological hourly series:
//
//	T(t) = mean + annual·cos(2π(doy−peakDay)/365)
//	            + diurnal·cos(2π(hour−peakHour)/24)
//	            + warming·years + AR(1) noise.
//
// Day-of-year and hour-of-day are circular proxies of the earth's orbital
// and rotational phase, exactly as the paper argues.
func GenTemperature(cfg TempConfig, seed uint64) []TempSample {
	if cfg.Years <= 0 {
		panic(fmt.Sprintf("dataset: years must be positive, got %d", cfg.Years))
	}
	if cfg.HourStep <= 0 {
		panic(fmt.Sprintf("dataset: hour step must be positive, got %d", cfg.HourStep))
	}
	hoursTotal := cfg.Years * 365 * 24
	n := hoursTotal / cfg.HourStep
	noise := dist.AR1(rng.Sub(seed, "temperature/noise"), n, cfg.NoisePhi, cfg.NoiseSD)
	out := make([]TempSample, n)
	for i := 0; i < n; i++ {
		hAbs := float64(i * cfg.HourStep)
		dayAbs := hAbs/24 + cfg.StartDayShift
		year := int(dayAbs / 365)
		doy := math.Mod(dayAbs, 365)
		hod := math.Mod(hAbs, 24)
		temp := cfg.MeanTemp +
			cfg.AnnualAmp*math.Cos(2*math.Pi*(doy-cfg.PeakDay)/365) +
			cfg.DiurnalAmp*math.Cos(2*math.Pi*(hod-cfg.PeakHour)/24) +
			cfg.WarmingPerYr*(dayAbs/365) +
			noise[i]
		out[i] = TempSample{YearIndex: year, DayOfYear: doy, HourOfDay: hod, Temp: temp}
	}
	return out
}

// SplitChronological splits a slice at the given fraction: the paper trains
// on the first 70% of the Beijing series and tests on the last 30%.
func SplitChronological[T any](xs []T, trainFrac float64) (train, test []T) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("dataset: train fraction %v outside (0,1)", trainFrac))
	}
	cut := int(float64(len(xs)) * trainFrac)
	return xs[:cut], xs[cut:]
}

// ---------------------------------------------------------------------------
// Orbital power series (Mars Express substitute)
// ---------------------------------------------------------------------------

// OrbitSample is one telemetry reading of the satellite power budget.
type OrbitSample struct {
	MeanAnomaly float64 // elapsed fraction of the orbit as an angle in [0, 2π)
	Power       float64 // available power, W (arbitrary synthetic scale)
}

// OrbitConfig parameterizes the synthetic power model.
type OrbitConfig struct {
	N           int     // number of telemetry samples
	BasePower   float64 // mean available power
	Harmonic1   float64 // first orbital harmonic amplitude
	Phase1      float64 // first harmonic phase (radians)
	Harmonic2   float64 // second harmonic amplitude
	Phase2      float64 // second harmonic phase (radians)
	EclipseDip  float64 // depth of the sharp eclipse feature
	EclipseAt   float64 // mean anomaly of the eclipse center (radians)
	EclipseWide float64 // eclipse angular width (radians)
	NoiseSD     float64 // measurement noise
}

// Clean returns the noise-free power at mean anomaly theta under the
// config — the generator's regression target, exported so tests and
// baselines can compute residuals.
func (cfg OrbitConfig) Clean(theta float64) float64 {
	sep := math.Abs(math.Mod(theta-cfg.EclipseAt+3*math.Pi, 2*math.Pi) - math.Pi)
	return cfg.BasePower +
		cfg.Harmonic1*math.Cos(theta-cfg.Phase1) +
		cfg.Harmonic2*math.Cos(2*theta-cfg.Phase2) -
		cfg.EclipseDip*math.Exp(-sep*sep/(2*cfg.EclipseWide*cfg.EclipseWide))
}

// DefaultOrbitConfig approximates the Mars Express thermal-power shape: a
// smooth orbital modulation plus a sharp eclipse dip that *straddles the
// anomaly wrap point*, the regime where circular encodings matter most.
func DefaultOrbitConfig() OrbitConfig {
	return OrbitConfig{
		N:           1500,
		BasePower:   450,
		Harmonic1:   40,
		Phase1:      0.6,
		Harmonic2:   18,
		Phase2:      1.9,
		EclipseDip:  60,
		EclipseAt:   0.05, // just past perihelion: the dip straddles the anomaly wrap seam
		EclipseWide: 0.8,
		NoiseSD:     20,
	}
}

// GenOrbitPower synthesizes telemetry with mean anomalies uniform on the
// circle:
//
//	P(θ) = base + h1·cos(θ−φ1) + h2·cos(2θ−φ2) − dip·exp(−arcdist(θ,c)²/2w²) + ε.
func GenOrbitPower(cfg OrbitConfig, seed uint64) []OrbitSample {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("dataset: sample count must be positive, got %d", cfg.N))
	}
	if cfg.EclipseWide <= 0 {
		panic("dataset: eclipse width must be positive")
	}
	r := rng.Sub(seed, "orbitpower")
	out := make([]OrbitSample, cfg.N)
	for i := range out {
		theta := dist.Uniform(r, 0, 2*math.Pi)
		out[i] = OrbitSample{
			MeanAnomaly: theta,
			Power:       cfg.Clean(theta) + dist.Normal(r, 0, cfg.NoiseSD),
		}
	}
	return out
}

// SplitRandom partitions xs into train/test with the given train fraction,
// shuffling with the provided stream (the paper splits Mars Express
// randomly 70/30).
func SplitRandom[T any](xs []T, trainFrac float64, r *rng.Stream) (train, test []T) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("dataset: train fraction %v outside (0,1)", trainFrac))
	}
	shuffled := make([]T, len(xs))
	copy(shuffled, xs)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	cut := int(float64(len(shuffled)) * trainFrac)
	return shuffled[:cut], shuffled[cut:]
}

// TempRange returns the min and max temperature of a series — used to size
// the label encoder's interval.
func TempRange(xs []TempSample) (lo, hi float64) {
	if len(xs) == 0 {
		panic("dataset: range of empty series")
	}
	lo, hi = xs[0].Temp, xs[0].Temp
	for _, s := range xs {
		lo = math.Min(lo, s.Temp)
		hi = math.Max(hi, s.Temp)
	}
	return lo, hi
}

// PowerRange returns the min and max power of a series.
func PowerRange(xs []OrbitSample) (lo, hi float64) {
	if len(xs) == 0 {
		panic("dataset: range of empty series")
	}
	lo, hi = xs[0].Power, xs[0].Power
	for _, s := range xs {
		lo = math.Min(lo, s.Power)
		hi = math.Max(hi, s.Power)
	}
	return lo, hi
}
