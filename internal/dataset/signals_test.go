package dataset

import (
	"testing"
)

func TestGenEMGShape(t *testing.T) {
	cfg := DefaultEMGConfig()
	ds := GenEMG(cfg, 1)
	if len(ds.Train) != cfg.NumGestures*cfg.TrainPerGesture {
		t.Fatalf("train size %d", len(ds.Train))
	}
	if len(ds.Test) != cfg.NumGestures*cfg.TestPerGesture {
		t.Fatalf("test size %d", len(ds.Test))
	}
	for _, s := range ds.Train {
		if len(s.Window) != cfg.WindowLen {
			t.Fatalf("window length %d", len(s.Window))
		}
		for _, step := range s.Window {
			if len(step) != cfg.Channels {
				t.Fatalf("channel count %d", len(step))
			}
			for _, v := range step {
				if v < 0 || v > 1 {
					t.Fatalf("amplitude %v outside [0,1]", v)
				}
			}
		}
		if s.Label < 0 || s.Label >= cfg.NumGestures {
			t.Fatalf("label %d", s.Label)
		}
	}
}

func TestGenEMGDeterministic(t *testing.T) {
	a := GenEMG(DefaultEMGConfig(), 9)
	b := GenEMG(DefaultEMGConfig(), 9)
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatal("labels differ")
		}
		for tt := range a.Train[i].Window {
			for ch := range a.Train[i].Window[tt] {
				if a.Train[i].Window[tt][ch] != b.Train[i].Window[tt][ch] {
					t.Fatal("amplitudes differ across equal seeds")
				}
			}
		}
	}
}

func TestGenEMGGesturesDiffer(t *testing.T) {
	// Per-gesture mean channel amplitudes must differ between gestures
	// (that is the class signal).
	ds := GenEMG(DefaultEMGConfig(), 2)
	means := make([][]float64, ds.Config.NumGestures)
	counts := make([]int, ds.Config.NumGestures)
	for g := range means {
		means[g] = make([]float64, ds.Config.Channels)
	}
	for _, s := range ds.Train {
		for _, step := range s.Window {
			for ch, v := range step {
				means[s.Label][ch] += v
			}
		}
		counts[s.Label]++
	}
	norm := float64(ds.Config.WindowLen)
	distinctPairs := 0
	for a := 0; a < len(means); a++ {
		for b := a + 1; b < len(means); b++ {
			var diff float64
			for ch := range means[a] {
				da := means[a][ch] / (norm * float64(counts[a]))
				db := means[b][ch] / (norm * float64(counts[b]))
				diff += (da - db) * (da - db)
			}
			if diff > 0.01 {
				distinctPairs++
			}
		}
	}
	if distinctPairs < 8 { // of 10 pairs
		t.Errorf("only %d/10 gesture pairs have distinct channel profiles", distinctPairs)
	}
}

func TestGenEMGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad EMG config did not panic")
		}
	}()
	GenEMG(EMGConfig{NumGestures: 1, Channels: 4, WindowLen: 8}, 1)
}

func TestGenTextShape(t *testing.T) {
	cfg := DefaultTextConfig()
	ds := GenText(cfg, 1)
	if len(ds.Train) != cfg.NumLanguages*cfg.TrainPerLang {
		t.Fatalf("train size %d", len(ds.Train))
	}
	for _, s := range append(append([]TextSample{}, ds.Train...), ds.Test...) {
		if len(s.Text) != cfg.SentenceLen {
			t.Fatalf("sentence length %d", len(s.Text))
		}
		for i := 0; i < len(s.Text); i++ {
			if s.Text[i] < 'a' || s.Text[i] >= 'a'+byte(cfg.Alphabet) {
				t.Fatalf("character %q outside alphabet", s.Text[i])
			}
		}
		if s.Label < 0 || s.Label >= cfg.NumLanguages {
			t.Fatalf("label %d", s.Label)
		}
	}
}

func TestGenTextDeterministic(t *testing.T) {
	a := GenText(DefaultTextConfig(), 4)
	b := GenText(DefaultTextConfig(), 4)
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatal("equal-seed text differs")
		}
	}
}

func TestGenTextLanguagesHaveDistinctBigrams(t *testing.T) {
	cfg := DefaultTextConfig()
	cfg.Alphabet = 6 // small alphabet → dense bigram counts
	ds := GenText(cfg, 5)
	bigrams := make([]map[string]int, cfg.NumLanguages)
	for g := range bigrams {
		bigrams[g] = map[string]int{}
	}
	for _, s := range ds.Train {
		for i := 1; i < len(s.Text); i++ {
			bigrams[s.Label][s.Text[i-1:i+1]]++
		}
	}
	// Total variation distance between the first two languages' bigram
	// distributions must be substantial.
	total := func(m map[string]int) float64 {
		var t float64
		for _, c := range m {
			t += float64(c)
		}
		return t
	}
	t0, t1 := total(bigrams[0]), total(bigrams[1])
	var tv float64
	seen := map[string]bool{}
	for k := range bigrams[0] {
		seen[k] = true
	}
	for k := range bigrams[1] {
		seen[k] = true
	}
	for k := range seen {
		tv += absf(float64(bigrams[0][k])/t0 - float64(bigrams[1][k])/t1)
	}
	tv /= 2
	if tv < 0.15 {
		t.Errorf("bigram TV distance %v too small — languages not distinctive", tv)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestGenTextPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad text config did not panic")
		}
	}()
	GenText(TextConfig{NumLanguages: 5, Alphabet: 30, SentenceLen: 10}, 1)
}
