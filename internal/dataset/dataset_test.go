package dataset

import (
	"math"
	"testing"

	"hdcirc/internal/rng"
	"hdcirc/internal/stats"
)

func TestGenGesturesShape(t *testing.T) {
	cfg := DefaultGestureConfig("knot-tying")
	ds := GenGestures(cfg, 1)
	if ds.Config.Task != "knot-tying" || ds.Config.NumGestures != 15 || ds.Config.NumFeatures != 18 {
		t.Errorf("meta wrong: %+v", ds.Config)
	}
	if len(ds.Train) != 15*40 || len(ds.Test) != 15*25 {
		t.Errorf("split sizes %d/%d", len(ds.Train), len(ds.Test))
	}
	for _, s := range append(append([]GestureSample{}, ds.Train...), ds.Test...) {
		if len(s.Features) != 18 {
			t.Fatalf("feature count %d", len(s.Features))
		}
		if s.Label < 0 || s.Label >= 15 {
			t.Fatalf("label %d out of range", s.Label)
		}
		for _, f := range s.Features {
			if f < 0 || f >= 2*math.Pi {
				t.Fatalf("feature %v outside [0,2π)", f)
			}
		}
	}
}

func TestGenGesturesDeterministic(t *testing.T) {
	cfg := DefaultGestureConfig("suturing")
	a := GenGestures(cfg, 7)
	b := GenGestures(cfg, 7)
	if len(a.Train) != len(b.Train) {
		t.Fatal("sizes differ")
	}
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatal("labels differ across equal-seed generations")
		}
		for f := range a.Train[i].Features {
			if a.Train[i].Features[f] != b.Train[i].Features[f] {
				t.Fatal("features differ across equal-seed generations")
			}
		}
	}
}

func TestGenGesturesTaskChangesLayout(t *testing.T) {
	a := GenGestures(DefaultGestureConfig("knot-tying"), 7)
	b := GenGestures(DefaultGestureConfig("suturing"), 7)
	diff := false
	for i := range a.Train {
		if a.Train[i].Features[0] != b.Train[i].Features[0] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different tasks produced identical data")
	}
}

func TestGenGesturesClassesAreClustered(t *testing.T) {
	// Per-class circular resultant must exceed the pooled resultant: class
	// structure exists and is angular.
	ds := GenGestures(DefaultGestureConfig("needle-passing"), 3)
	byClass := map[int][]float64{}
	var all []float64
	for _, s := range ds.Train {
		byClass[s.Label] = append(byClass[s.Label], s.Features[0])
		all = append(all, s.Features[0])
	}
	pooled := stats.Circular(all).Resultant
	tighter := 0
	for _, angles := range byClass {
		if stats.Circular(angles).Resultant > pooled+0.1 {
			tighter++
		}
	}
	if tighter < len(byClass)*3/4 {
		t.Errorf("only %d/%d classes tighter than pooled sample", tighter, len(byClass))
	}
}

func TestGenGesturesTrainTighterThanTest(t *testing.T) {
	ds := GenGestures(DefaultGestureConfig("knot-tying"), 4)
	resOf := func(ss []GestureSample, label int) float64 {
		var angles []float64
		for _, s := range ss {
			if s.Label == label {
				angles = append(angles, s.Features[0])
			}
		}
		return stats.Circular(angles).Resultant
	}
	tighter := 0
	for g := 0; g < 15; g++ {
		if resOf(ds.Train, g) > resOf(ds.Test, g) {
			tighter++
		}
	}
	if tighter < 11 {
		t.Errorf("train split tighter for only %d/15 gestures", tighter)
	}
}

func TestGenGesturesWrapFraction(t *testing.T) {
	// With WrapFraction=1 every class mean hugs the seam: the majority of
	// samples should fall within ±0.5 rad of it at high concentration.
	cfg := DefaultGestureConfig("wrap-everything")
	cfg.WrapFraction = 1
	cfg.KappaTrain = 50
	ds := GenGestures(cfg, 5)
	near := 0
	for _, s := range ds.Train {
		for _, f := range s.Features {
			if f < 0.5 || f > 2*math.Pi-0.5 {
				near++
			}
		}
	}
	total := len(ds.Train) * 18
	if frac := float64(near) / float64(total); frac < 0.9 {
		t.Errorf("only %v of features near the seam with WrapFraction=1", frac)
	}
}

func TestGenGesturesPanics(t *testing.T) {
	bad := []GestureConfig{
		{NumGestures: 1, NumFeatures: 3},
		{NumGestures: 5, NumFeatures: 0},
		{NumGestures: 5, NumFeatures: 3, KappaTrain: -1},
		{NumGestures: 5, NumFeatures: 3, WrapFraction: 2},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			GenGestures(cfg, 1)
		}()
	}
}

func TestGenTemperatureShape(t *testing.T) {
	cfg := DefaultTempConfig()
	xs := GenTemperature(cfg, 1)
	wantN := 4 * 365 * 24 / 3
	if len(xs) != wantN {
		t.Fatalf("n = %d, want %d", len(xs), wantN)
	}
	for _, s := range xs {
		if s.DayOfYear < 0 || s.DayOfYear >= 365 {
			t.Fatalf("day %v out of range", s.DayOfYear)
		}
		if s.HourOfDay < 0 || s.HourOfDay >= 24 {
			t.Fatalf("hour %v out of range", s.HourOfDay)
		}
		if s.YearIndex < 0 || s.YearIndex > 4 {
			t.Fatalf("year %d out of range", s.YearIndex)
		}
	}
}

func TestGenTemperatureSeasonalShape(t *testing.T) {
	cfg := DefaultTempConfig()
	xs := GenTemperature(cfg, 2)
	// July warmer than January, afternoon warmer than pre-dawn.
	var julSum, julN, janSum, janN float64
	for _, s := range xs {
		if s.DayOfYear > 182 && s.DayOfYear < 212 {
			julSum += s.Temp
			julN++
		}
		if s.DayOfYear < 31 {
			janSum += s.Temp
			janN++
		}
	}
	if julSum/julN < janSum/janN+15 {
		t.Errorf("July mean %v not ≫ January mean %v", julSum/julN, janSum/janN)
	}
}

func TestGenTemperatureCircadianCorrelation(t *testing.T) {
	// The feature the paper builds on: circular-linear correlation between
	// day-of-year phase and temperature must be strong.
	xs := GenTemperature(DefaultTempConfig(), 3)
	theta := make([]float64, len(xs))
	temp := make([]float64, len(xs))
	for i, s := range xs {
		theta[i] = 2 * math.Pi * s.DayOfYear / 365
		temp[i] = s.Temp
	}
	if r2 := stats.CircularLinearCorrelation(theta, temp); r2 < 0.8 {
		t.Errorf("day-of-year/temperature R² = %v, want > 0.8", r2)
	}
}

func TestGenTemperatureWarmingTrend(t *testing.T) {
	cfg := DefaultTempConfig()
	cfg.WarmingPerYr = 2 // exaggerate to dominate noise
	xs := GenTemperature(cfg, 4)
	firstYear, lastYear := 0.0, 0.0
	var nf, nl float64
	for _, s := range xs {
		if s.YearIndex == 0 {
			firstYear += s.Temp
			nf++
		}
		if s.YearIndex == cfg.Years-1 {
			lastYear += s.Temp
			nl++
		}
	}
	if lastYear/nl <= firstYear/nf {
		t.Error("warming trend absent")
	}
}

func TestGenTemperatureDeterministic(t *testing.T) {
	a := GenTemperature(DefaultTempConfig(), 5)
	b := GenTemperature(DefaultTempConfig(), 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("equal-seed temperature series differ")
		}
	}
}

func TestGenTemperaturePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("years=0 did not panic")
			}
		}()
		GenTemperature(TempConfig{Years: 0, HourStep: 1}, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("hourstep=0 did not panic")
			}
		}()
		GenTemperature(TempConfig{Years: 1, HourStep: 0}, 1)
	}()
}

func TestGenOrbitPowerShape(t *testing.T) {
	cfg := DefaultOrbitConfig()
	xs := GenOrbitPower(cfg, 1)
	if len(xs) != cfg.N {
		t.Fatalf("n = %d", len(xs))
	}
	for _, s := range xs {
		if s.MeanAnomaly < 0 || s.MeanAnomaly >= 2*math.Pi {
			t.Fatalf("anomaly %v out of range", s.MeanAnomaly)
		}
	}
	lo, hi := PowerRange(xs)
	if hi-lo < cfg.EclipseDip {
		t.Errorf("power range [%v,%v] narrower than the eclipse dip", lo, hi)
	}
}

func TestGenOrbitPowerEclipseDip(t *testing.T) {
	// Residuals against the harmonic-only model must show the dip near the
	// eclipse center and nothing elsewhere.
	cfg := DefaultOrbitConfig()
	cfg.NoiseSD = 0.1
	noDip := cfg
	noDip.EclipseDip = 0
	xs := GenOrbitPower(cfg, 2)
	var inDip, outDip, nIn, nOut float64
	for _, s := range xs {
		sep := math.Abs(math.Mod(s.MeanAnomaly-cfg.EclipseAt+3*math.Pi, 2*math.Pi) - math.Pi)
		resid := s.Power - noDip.Clean(s.MeanAnomaly)
		if sep < cfg.EclipseWide/2 {
			inDip += resid
			nIn++
		} else if sep > 3*cfg.EclipseWide {
			outDip += resid
			nOut++
		}
	}
	if nIn == 0 || nOut == 0 {
		t.Fatal("no samples in one of the regions")
	}
	if inDip/nIn > -cfg.EclipseDip/2 {
		t.Errorf("in-dip residual %v not clearly negative", inDip/nIn)
	}
	if math.Abs(outDip/nOut) > 2 {
		t.Errorf("background residual %v not ≈ 0", outDip/nOut)
	}
}

func TestGenOrbitPowerMatchesClean(t *testing.T) {
	cfg := DefaultOrbitConfig()
	cfg.NoiseSD = 0
	xs := GenOrbitPower(cfg, 9)
	for _, s := range xs[:200] {
		if math.Abs(s.Power-cfg.Clean(s.MeanAnomaly)) > 1e-9 {
			t.Fatal("noise-free samples deviate from Clean()")
		}
	}
}

func TestGenOrbitPowerAnomalyCoverage(t *testing.T) {
	xs := GenOrbitPower(DefaultOrbitConfig(), 3)
	angles := make([]float64, len(xs))
	for i, s := range xs {
		angles[i] = s.MeanAnomaly
	}
	if res := stats.Circular(angles).Resultant; res > 0.05 {
		t.Errorf("anomalies not uniform on the circle: resultant %v", res)
	}
}

func TestGenOrbitPowerCircularCorrelation(t *testing.T) {
	xs := GenOrbitPower(DefaultOrbitConfig(), 4)
	theta := make([]float64, len(xs))
	p := make([]float64, len(xs))
	for i, s := range xs {
		theta[i] = s.MeanAnomaly
		p[i] = s.Power
	}
	// Mardia's R² captures the first-harmonic association only; the default
	// config carries substantial second-harmonic, eclipse and noise power,
	// so the bar is a clear nonzero association rather than a high one.
	if r2 := stats.CircularLinearCorrelation(theta, p); r2 < 0.15 {
		t.Errorf("anomaly/power R² = %v, want > 0.15", r2)
	}
	// A de-phased control must show far weaker association.
	shuffled := make([]float64, len(theta))
	for i := range shuffled {
		shuffled[i] = theta[(i+len(theta)/2)%len(theta)]
	}
	if r2, r2s := stats.CircularLinearCorrelation(theta, p), stats.CircularLinearCorrelation(shuffled, p); r2s > r2/2 {
		t.Errorf("shuffled control R² = %v not well below real R² = %v", r2s, r2)
	}
}

func TestGenOrbitPowerPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("n=0 did not panic")
			}
		}()
		GenOrbitPower(OrbitConfig{N: 0, EclipseWide: 1}, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("width=0 did not panic")
			}
		}()
		GenOrbitPower(OrbitConfig{N: 10, EclipseWide: 0}, 1)
	}()
}

func TestSplitChronological(t *testing.T) {
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	train, test := SplitChronological(xs, 0.7)
	if len(train) != 7 || len(test) != 3 {
		t.Fatalf("split %d/%d", len(train), len(test))
	}
	if train[0] != 0 || test[0] != 7 {
		t.Error("chronological order not preserved")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad fraction did not panic")
			}
		}()
		SplitChronological(xs, 1.0)
	}()
}

func TestSplitRandom(t *testing.T) {
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	train, test := SplitRandom(xs, 0.7, rng.New(1))
	if len(train) != 70 || len(test) != 30 {
		t.Fatalf("split %d/%d", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, v := range append(append([]int{}, train...), test...) {
		if seen[v] {
			t.Fatal("duplicate element after split")
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatal("elements lost in split")
	}
	// Original slice untouched.
	for i, v := range xs {
		if v != i {
			t.Fatal("SplitRandom mutated input")
		}
	}
}

func TestTempAndPowerRange(t *testing.T) {
	xs := []TempSample{{Temp: 3}, {Temp: -5}, {Temp: 11}}
	lo, hi := TempRange(xs)
	if lo != -5 || hi != 11 {
		t.Errorf("range [%v,%v]", lo, hi)
	}
	ps := []OrbitSample{{Power: 400}, {Power: 350}, {Power: 500}}
	plo, phi := PowerRange(ps)
	if plo != 350 || phi != 500 {
		t.Errorf("power range [%v,%v]", plo, phi)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty range did not panic")
			}
		}()
		TempRange(nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty power range did not panic")
			}
		}()
		PowerRange(nil)
	}()
}
