package sdm

// Exact-state serialization for durable checkpoints (internal/serve). The
// hard-location addresses are a pure function of the Config seed and are
// not persisted; only the written counters are, sparsely — in the sparse
// operating regime a write touches ~1% of locations, so a checkpoint of a
// lightly written memory is far smaller than locations × dimension.
//
//	stream: magic "HSDM" | uint32 version | uint64 dim | uint64 locations
//	        | uint64 radius | uint64 writes | uint64 touched
//	        | touched × (uint32 location | HACC accumulator)

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hdcirc/internal/bitvec"
)

const (
	sdmMagic   = "HSDM"
	sdmVersion = 1
)

// WriteStateTo serializes the memory's exact counter state. A memory
// restored from this stream reads, writes and forks bit-identically to the
// original. Safe to call on a published (never-again-written) generation
// while newer forks keep taking writes.
func (m *Memory) WriteStateTo(w io.Writer) (int64, error) {
	touched := make([]int, 0, 64)
	for i, acc := range m.counters {
		if acc.N() != 0 {
			touched = append(touched, i)
		}
	}
	header := make([]byte, 4+4+8+8+8+8+8)
	copy(header, sdmMagic)
	binary.LittleEndian.PutUint32(header[4:], sdmVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(m.d))
	binary.LittleEndian.PutUint64(header[16:], uint64(len(m.addresses)))
	binary.LittleEndian.PutUint64(header[24:], uint64(m.radius))
	binary.LittleEndian.PutUint64(header[32:], uint64(m.writes))
	binary.LittleEndian.PutUint64(header[40:], uint64(len(touched)))
	var n int64
	k, err := w.Write(header)
	n += int64(k)
	if err != nil {
		return n, err
	}
	var idx [4]byte
	for _, i := range touched {
		binary.LittleEndian.PutUint32(idx[:], uint32(i))
		k, err = w.Write(idx[:])
		n += int64(k)
		if err != nil {
			return n, err
		}
		kk, err := m.counters[i].WriteTo(w)
		n += kk
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// RestoreStateFrom loads the exact counter state written by WriteStateTo
// into a FRESH memory (no writes yet) built from the same Config — the
// addresses must match, which the stream cannot verify beyond shape, so
// the caller owns seed equality just as with serve.Server.Restore.
func (m *Memory) RestoreStateFrom(r io.Reader) error {
	if m.writes != 0 {
		return errors.New("sdm: RestoreStateFrom needs a fresh memory (writes already applied)")
	}
	header := make([]byte, 4+4+8+8+8+8+8)
	if _, err := io.ReadFull(r, header); err != nil {
		return fmt.Errorf("sdm: reading state header: %w", err)
	}
	if string(header[:4]) != sdmMagic {
		return errors.New("sdm: bad magic (not an SDM state stream)")
	}
	if ver := binary.LittleEndian.Uint32(header[4:]); ver != sdmVersion {
		return fmt.Errorf("sdm: unsupported state version %d", ver)
	}
	if d := binary.LittleEndian.Uint64(header[8:]); d != uint64(m.d) {
		return fmt.Errorf("sdm: state stream dimension %d, memory %d", d, m.d)
	}
	if locs := binary.LittleEndian.Uint64(header[16:]); locs != uint64(len(m.addresses)) {
		return fmt.Errorf("sdm: state stream has %d locations, memory %d", locs, len(m.addresses))
	}
	if rad := binary.LittleEndian.Uint64(header[24:]); rad != uint64(m.radius) {
		return fmt.Errorf("sdm: state stream radius %d, memory %d", rad, m.radius)
	}
	writes := binary.LittleEndian.Uint64(header[32:])
	touched := binary.LittleEndian.Uint64(header[40:])
	if touched > uint64(len(m.addresses)) {
		return fmt.Errorf("sdm: implausible touched-location count %d", touched)
	}
	counters := make([]*bitvec.Accumulator, len(m.counters))
	copy(counters, m.counters)
	var idx [4]byte
	for j := uint64(0); j < touched; j++ {
		if _, err := io.ReadFull(r, idx[:]); err != nil {
			return fmt.Errorf("sdm: reading touched location %d: %w", j, err)
		}
		i := binary.LittleEndian.Uint32(idx[:])
		if i >= uint32(len(counters)) {
			return fmt.Errorf("sdm: touched location %d outside [0,%d)", i, len(counters))
		}
		acc, err := bitvec.ReadAccumulator(r)
		if err != nil {
			return fmt.Errorf("sdm: reading location %d counters: %w", i, err)
		}
		if acc.Dim() != m.d {
			return fmt.Errorf("sdm: location %d counters dimension %d, memory %d", i, acc.Dim(), m.d)
		}
		counters[i] = acc
	}
	m.counters = counters
	m.writes = int(writes)
	return nil
}
