// Package sdm implements Kanerva's Sparse Distributed Memory (Kanerva
// 1988, the paper's reference [18]) — the associative memory that underlies
// HDC's theory of quasi-orthogonality and serves as a large-capacity
// cleanup memory: write noisy hypervectors in, read denoised ones back.
//
// The memory consists of H hard locations with fixed random addresses in
// {0,1}^d. A write at address A increments/decrements the bipolar counters
// of every hard location within Hamming radius r of A; a read at A sums the
// counters of the activated locations and thresholds. Reads can be iterated:
// starting from a noisy cue, each read output is used as the next address,
// converging to the stored item when the cue is within the critical
// distance.
package sdm

import (
	"fmt"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/index"
	"hdcirc/internal/rng"
)

// Memory is a sparse distributed memory. Reads (Read, ReadIterative,
// ActivationCount) are pure and safe from any number of goroutines as long
// as no Write runs concurrently; Write requires exclusive access. For
// serving, Fork gives cheap immutable generations: never write a published
// memory again, write its fork instead.
type Memory struct {
	d         int
	radius    int
	addresses []*bitvec.Vector      // shared across forks, never mutated
	addrIx    *index.Index          // optional sketch index over addresses; shared across forks
	counters  []*bitvec.Accumulator // per hard location bipolar counters
	owned     []bool                // nil: all counters owned; else copy-on-write markers
	writes    int
}

// Config parameterizes a Memory.
type Config struct {
	Dim       int // hypervector dimension d
	Locations int // number of hard locations H
	Radius    int // activation Hamming radius r

	Seed uint64

	// Index optionally routes the activation scan through a bit-sampling
	// sketch index over the hard-location addresses (built once at New —
	// the addresses never change — and shared by every Fork). Candidates
	// are screened by signature distance against the slack-widened scaled
	// radius, then verified exactly, so activations contain no false
	// positives; misses are bounded by the configured RadiusSlack. Note
	// the screen only has power when the radius sits well below d/2: at
	// the classic sparse operating point (activation probability ~1%,
	// radius just under d/2) the index detects that and falls back to the
	// exact capped-popcount scan. Nil keeps activation exact.
	Index *index.Config
}

// DefaultConfig returns an operating point scaled to the given dimension:
// the radius is chosen so a location activates for ≈ 1% of random
// addresses, which at 5000 hard locations activates ~50 locations per
// access — enough overlap between a noisy cue's set and the stored item's
// set for reliable recall. (Kanerva's classic 0.1% point assumes millions
// of locations.) The radius is exposed directly for other trade-offs.
func DefaultConfig(d int) Config {
	return Config{
		Dim:       d,
		Locations: 5000,
		Radius:    activationRadius(d, 0.01),
		Seed:      1,
	}
}

// activationRadius returns the Hamming radius at which a random address
// activates a location with roughly the given probability, using the normal
// approximation to Binomial(d, 1/2).
func activationRadius(d int, p float64) int {
	// z-quantiles for the tail probabilities we care about.
	var z float64
	switch {
	case p >= 0.01:
		z = 2.326
	case p >= 0.001:
		z = 3.090
	default:
		z = 3.719
	}
	mean := float64(d) / 2
	sd := 0.5 * sqrtf(float64(d))
	r := int(mean - z*sd)
	if r < 0 {
		r = 0
	}
	return r
}

func sqrtf(x float64) float64 {
	// Newton iterations suffice and avoid importing math for one call.
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 32; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// New creates a memory with uniformly random hard-location addresses.
func New(cfg Config) *Memory {
	if cfg.Dim <= 0 {
		panic(fmt.Sprintf("sdm: dimension must be positive, got %d", cfg.Dim))
	}
	if cfg.Locations <= 0 {
		panic(fmt.Sprintf("sdm: need at least one hard location, got %d", cfg.Locations))
	}
	if cfg.Radius < 0 || cfg.Radius >= cfg.Dim {
		panic(fmt.Sprintf("sdm: radius %d outside [0, %d)", cfg.Radius, cfg.Dim))
	}
	src := rng.Sub(cfg.Seed, "sdm/addresses")
	m := &Memory{
		d:         cfg.Dim,
		radius:    cfg.Radius,
		addresses: make([]*bitvec.Vector, cfg.Locations),
		counters:  make([]*bitvec.Accumulator, cfg.Locations),
	}
	for i := range m.addresses {
		m.addresses[i] = bitvec.Random(cfg.Dim, src)
		m.counters[i] = bitvec.NewAccumulator(cfg.Dim)
	}
	if cfg.Index != nil && cfg.Index.Enabled(len(m.addresses)) {
		m.addrIx = index.New(m.addresses, *cfg.Index)
	}
	return m
}

// Dim returns the hypervector dimension.
func (m *Memory) Dim() int { return m.d }

// Locations returns the number of hard locations.
func (m *Memory) Locations() int { return len(m.addresses) }

// Radius returns the activation radius.
func (m *Memory) Radius() int { return m.radius }

// Writes returns the number of Write calls so far.
func (m *Memory) Writes() int { return m.writes }

// activated returns the indexes of hard locations within the radius of a,
// ascending. With an address index configured, candidates come from the
// signature screen plus exact verification; otherwise (and whenever the
// screen has no power at this radius) the scan is the exact capped-popcount
// kernel: in the sparse regime ~99% of locations miss, and almost all of
// them exceed the radius within the first few words.
func (m *Memory) activated(a *bitvec.Vector) []int {
	if m.addrIx != nil {
		return m.addrIx.WithinRadius(a, m.radius, nil)
	}
	var out []int
	for i, addr := range m.addresses {
		if bitvec.WithinDistance(addr, a, m.radius) {
			out = append(out, i)
		}
	}
	return out
}

// ActivationCount returns how many hard locations the address activates —
// useful for validating that the radius is in the sparse regime.
func (m *Memory) ActivationCount(a *bitvec.Vector) int { return len(m.activated(a)) }

// Fork returns a new generation of the memory that shares all storage
// with m: the fixed addresses outright, and the counters copy-on-write —
// a Write to the fork first clones the counters of the (few, sparse-regime)
// activated locations, leaving m and every earlier fork untouched. Forking
// is O(locations) pointer copies, not O(locations × dimension) counter
// copies, so a serving layer can publish an immutable snapshot per write
// batch. The fork starts with the same contents and write count as m.
func (m *Memory) Fork() *Memory {
	cp := &Memory{
		d:         m.d,
		radius:    m.radius,
		addresses: m.addresses,
		addrIx:    m.addrIx,
		counters:  make([]*bitvec.Accumulator, len(m.counters)),
		owned:     make([]bool, len(m.counters)),
		writes:    m.writes,
	}
	copy(cp.counters, m.counters)
	return cp
}

// Write stores data at address: every activated location's counters move
// toward the data word (auto-association uses Write(x, x)). Each update is
// one word-parallel accumulator addition. On a forked memory the touched
// locations are cloned first (copy-on-write), so the parent generation is
// never modified.
func (m *Memory) Write(address, data *bitvec.Vector) {
	m.check(address)
	m.check(data)
	for _, i := range m.activated(address) {
		if m.owned != nil && !m.owned[i] {
			m.counters[i] = m.counters[i].Clone()
			m.owned[i] = true
		}
		m.counters[i].Add(data)
	}
	m.writes++
}

// Read recalls the word stored at address by summing activated counters
// and thresholding at zero (ties resolve to the address's own bit, the
// customary symmetric choice). ok is false when no location activates.
// The sum runs location-major (sequential counter reads, unlike the
// dimension-major scan that strides across every location per dimension)
// and the threshold packs output words in registers.
func (m *Memory) Read(address *bitvec.Vector) (word *bitvec.Vector, ok bool) {
	m.check(address)
	act := m.activated(address)
	if len(act) == 0 {
		return nil, false
	}
	sums := make([]int64, m.d)
	for _, i := range act {
		for k, c := range m.counters[i].Counts() {
			sums[k] += int64(c)
		}
	}
	out := bitvec.New(m.d)
	words := out.Words()
	aw := address.Words()
	for wi := range words {
		base := wi << 6
		n := m.d - base
		if n > 64 {
			n = 64
		}
		var pos, ties uint64
		for b, s := range sums[base : base+n : base+n] {
			if s > 0 {
				pos |= 1 << uint(b)
			} else if s == 0 {
				ties |= 1 << uint(b)
			}
		}
		words[wi] = pos | ties&aw[wi]
	}
	return out, true
}

// ReadIterative reads repeatedly, feeding each output back as the next
// address, until a fixed point or maxIters. It returns the final word, the
// number of iterations used, and ok=false when some read found no active
// locations. This is Kanerva's converging recall: within the critical
// distance the sequence contracts to the stored item.
func (m *Memory) ReadIterative(address *bitvec.Vector, maxIters int) (word *bitvec.Vector, iters int, ok bool) {
	cur := address
	for i := 0; i < maxIters; i++ {
		next, readOK := m.Read(cur)
		if !readOK {
			return nil, i, false
		}
		if next.Equal(cur) {
			return next, i + 1, true
		}
		cur = next
	}
	return cur, maxIters, true
}

func (m *Memory) check(v *bitvec.Vector) {
	if v.Dim() != m.d {
		panic(fmt.Sprintf("sdm: vector dimension %d, memory dimension %d", v.Dim(), m.d))
	}
}
