package sdm

import (
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/index"
	"hdcirc/internal/rng"
)

// indexedPair builds an exact memory and an index-configured twin with
// identical addresses and contents.
func indexedPair(t *testing.T, cfg Config, ixCfg index.Config) (exact, indexed *Memory) {
	t.Helper()
	exact = New(cfg)
	withIx := cfg
	withIx.Index = &ixCfg
	indexed = New(withIx)
	if indexed.addrIx == nil {
		t.Fatalf("index did not engage (locations=%d, MinSize=%d)", cfg.Locations, ixCfg.MinSize)
	}
	return exact, indexed
}

func TestIndexedActivationTightRadiusMatchesExact(t *testing.T) {
	// A tight radius (well below d/2) is the regime where the signature
	// screen actually prunes; activations must still match the exact scan
	// on every probe here (the slack makes misses vanishingly rare, and
	// this fixture is deterministic — a miss would be a hard failure).
	const d = 1024
	cfg := Config{Dim: d, Locations: 600, Radius: d / 4, Seed: 3}
	exact, indexed := indexedPair(t, cfg, index.Config{MinSize: 100})
	src := rng.Sub(41, "tight-probes")
	activations := 0
	for i := 0; i < 200; i++ {
		var probe *bitvec.Vector
		if i%2 == 0 {
			probe = bitvec.Random(d, src)
		} else {
			// Near a hard location, inside the radius.
			probe = exact.addresses[i%len(exact.addresses)].Clone()
			for f := 0; f < d/8; f++ {
				probe.FlipBit(int(src.Uint64() % uint64(d)))
			}
		}
		want := exact.activated(probe)
		got := indexed.activated(probe)
		if len(got) != len(want) {
			t.Fatalf("probe %d: %d activations, exact %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("probe %d: activation[%d] = %d, exact %d", i, j, got[j], want[j])
			}
		}
		activations += len(want)
	}
	if activations == 0 {
		t.Fatal("fixture never activated a location")
	}
}

func TestIndexedActivationSparseRegimeFallsBackExact(t *testing.T) {
	// The classic sparse operating point: radius just below d/2, where a
	// bit sample cannot separate in-radius from quasi-orthogonal. The
	// index must fall back to the exact scan, making results identical by
	// construction.
	cfg := DefaultConfig(2048)
	cfg.Locations = 500
	exact, indexed := indexedPair(t, cfg, index.Config{MinSize: 100})
	src := rng.Sub(43, "sparse-probes")
	for i := 0; i < 50; i++ {
		probe := bitvec.Random(cfg.Dim, src)
		want := exact.ActivationCount(probe)
		if got := indexed.ActivationCount(probe); got != want {
			t.Fatalf("probe %d: %d activations, exact %d", i, got, want)
		}
	}
}

func TestIndexedReadWriteRoundTrip(t *testing.T) {
	const d = 1024
	ixCfg := index.Config{MinSize: 100}
	cfg := Config{Dim: d, Locations: 800, Radius: d/4 + 80, Seed: 5, Index: &ixCfg}
	m := New(cfg)
	src := rng.Sub(47, "rw")
	// Anchor the stored item near a hard location: random addresses sit at
	// distance ~d/2 from everything, so a sub-d/2 radius (the screen
	// regime this test exercises) only ever activates locations the data
	// is actually close to.
	stored := m.addresses[0].Clone()
	for f := 0; f < d/16; f++ {
		stored.FlipBit(int(src.Uint64() % uint64(d)))
	}
	// Auto-associative writes from noisy copies of the item.
	for i := 0; i < 9; i++ {
		a := stored.Clone()
		for f := 0; f < d/16; f++ {
			a.FlipBit(int(src.Uint64() % uint64(d)))
		}
		m.Write(a, stored)
	}
	cue := stored.Clone()
	for f := 0; f < d/16; f++ {
		cue.FlipBit(int(src.Uint64() % uint64(d)))
	}
	word, _, ok := m.ReadIterative(cue, 10)
	if !ok {
		t.Fatal("indexed read activated no locations")
	}
	if word.Distance(stored) > 0.05 {
		t.Fatalf("recalled word at distance %v from stored item", word.Distance(stored))
	}
}

func TestForkSharesAddressIndex(t *testing.T) {
	ixCfg := index.Config{MinSize: 10}
	m := New(Config{Dim: 256, Locations: 50, Radius: 64, Seed: 7, Index: &ixCfg})
	f := m.Fork()
	if f.addrIx != m.addrIx {
		t.Fatal("fork rebuilt or dropped the shared address index")
	}
}
