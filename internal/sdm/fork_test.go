package sdm

import (
	"sync"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
)

// TestForkIsolatesParent writes to a fork and checks the parent's reads are
// byte-identical to before the fork — the copy-on-write contract snapshot
// serving depends on.
func TestForkIsolatesParent(t *testing.T) {
	m := testMemory(1)
	src := rng.New(2)
	stored := make([]*bitvec.Vector, 8)
	for i := range stored {
		stored[i] = bitvec.Random(256, src)
		m.Write(stored[i], stored[i])
	}
	parentReads := make([]*bitvec.Vector, len(stored))
	for i, v := range stored {
		got, ok := m.Read(v)
		if !ok {
			t.Fatalf("parent read %d failed", i)
		}
		parentReads[i] = got
	}

	f := m.Fork()
	if f.Writes() != m.Writes() {
		t.Errorf("fork writes = %d, parent %d", f.Writes(), m.Writes())
	}
	// Fork starts identical.
	for i, v := range stored {
		got, ok := f.Read(v)
		if !ok || !got.Equal(parentReads[i]) {
			t.Fatalf("fork read %d differs from parent before any write", i)
		}
	}
	// Hammer the fork; the parent must not move.
	for i := 0; i < 16; i++ {
		v := bitvec.Random(256, src)
		f.Write(v, v)
	}
	for i, v := range stored {
		got, ok := m.Read(v)
		if !ok || !got.Equal(parentReads[i]) {
			t.Fatalf("parent read %d changed after writes to fork", i)
		}
	}
	if f.Writes() != m.Writes()+16 {
		t.Errorf("fork writes = %d, want %d", f.Writes(), m.Writes()+16)
	}
}

// TestForkChainMatchesDirectWrites checks a chain of forks (one per write
// batch, the serving pattern) reads identically to a single memory given
// the same writes in the same order.
func TestForkChainMatchesDirectWrites(t *testing.T) {
	direct := testMemory(3)
	head := testMemory(3)
	src := rng.New(4)
	var cues []*bitvec.Vector
	for batch := 0; batch < 5; batch++ {
		head = head.Fork()
		for j := 0; j < 4; j++ {
			v := bitvec.Random(256, src)
			cues = append(cues, v)
			direct.Write(v, v)
			head.Write(v, v)
		}
	}
	for i, v := range cues {
		a, aok := direct.Read(v)
		b, bok := head.Read(v)
		if aok != bok || (aok && !a.Equal(b)) {
			t.Fatalf("fork-chain read %d diverged from direct memory", i)
		}
	}
}

// TestForkConcurrentReadsDuringForkWrites reads a published generation from
// many goroutines while the writer mutates its fork — the -race exercise
// for the COW contract.
func TestForkConcurrentReadsDuringForkWrites(t *testing.T) {
	m := testMemory(5)
	src := rng.New(6)
	stored := make([]*bitvec.Vector, 8)
	for i := range stored {
		stored[i] = bitvec.Random(256, src)
		m.Write(stored[i], stored[i])
	}
	f := m.Fork()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				for _, v := range stored {
					if _, ok := m.Read(v); !ok {
						t.Error("read failed")
						return
					}
				}
			}
		}()
	}
	wsrc := rng.New(7)
	for i := 0; i < 100; i++ {
		v := bitvec.Random(256, wsrc)
		f.Write(v, v)
	}
	wg.Wait()
}
