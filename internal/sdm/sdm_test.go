package sdm

import (
	"math"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
)

// testMemory returns a small but functional memory: d=256, enough
// locations and radius for reliable recall of a handful of items.
func testMemory(seed uint64) *Memory {
	return New(Config{Dim: 256, Locations: 2000, Radius: activationRadius(256, 0.01), Seed: seed})
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Dim: 0, Locations: 10, Radius: 1},
		{Dim: 64, Locations: 0, Radius: 1},
		{Dim: 64, Locations: 10, Radius: 64},
		{Dim: 64, Locations: 10, Radius: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestAccessors(t *testing.T) {
	m := testMemory(1)
	if m.Dim() != 256 || m.Locations() != 2000 {
		t.Error("accessors wrong")
	}
	if m.Writes() != 0 {
		t.Error("fresh memory has writes")
	}
}

func TestActivationSparse(t *testing.T) {
	// At the p=0.01 radius roughly 1% of locations activate; allow a wide
	// band but require sparsity (≪ all) and non-emptiness on average.
	m := testMemory(2)
	r := rng.New(3)
	total := 0
	for i := 0; i < 20; i++ {
		total += m.ActivationCount(bitvec.Random(256, r))
	}
	avg := float64(total) / 20
	if avg < 2 || avg > 200 {
		t.Errorf("average activation count %v outside sparse regime", avg)
	}
}

func TestAutoAssociativeRecallExact(t *testing.T) {
	m := testMemory(4)
	r := rng.New(5)
	items := make([]*bitvec.Vector, 5)
	for i := range items {
		items[i] = bitvec.Random(256, r)
		m.Write(items[i], items[i])
	}
	if m.Writes() != 5 {
		t.Errorf("writes = %d", m.Writes())
	}
	for i, item := range items {
		got, ok := m.Read(item)
		if !ok {
			t.Fatalf("item %d: no active locations", i)
		}
		if d := got.Distance(item); d > 0.05 {
			t.Errorf("item %d: clean-cue recall distance %v", i, d)
		}
	}
}

func TestNoisyCueConverges(t *testing.T) {
	// Kanerva's headline property: a cue within the critical distance
	// iteratively converges to the stored word.
	m := testMemory(6)
	r := rng.New(7)
	item := bitvec.Random(256, r)
	m.Write(item, item)
	cue := item.Clone()
	for i := 0; i < 25; i++ { // ~10% noise
		cue.FlipBit(r.Intn(256))
	}
	got, iters, ok := m.ReadIterative(cue, 10)
	if !ok {
		t.Fatal("no active locations during iterative read")
	}
	if d := got.Distance(item); d > 0.05 {
		t.Errorf("converged word distance %v after %d iters", d, iters)
	}
}

func TestHeteroAssociativeSequence(t *testing.T) {
	// Store a chain x1→x2→x3 and walk it.
	m := testMemory(8)
	r := rng.New(9)
	xs := []*bitvec.Vector{bitvec.Random(256, r), bitvec.Random(256, r), bitvec.Random(256, r)}
	m.Write(xs[0], xs[1])
	m.Write(xs[1], xs[2])
	cur := xs[0]
	for step := 1; step < 3; step++ {
		next, ok := m.Read(cur)
		if !ok {
			t.Fatal("chain read failed")
		}
		if d := next.Distance(xs[step]); d > 0.1 {
			t.Fatalf("step %d: distance %v", step, d)
		}
		cur = xs[step] // use the clean vector to keep the test focused on one hop
	}
}

func TestReadUnrelatedAddressIsNoise(t *testing.T) {
	m := testMemory(10)
	r := rng.New(11)
	item := bitvec.Random(256, r)
	m.Write(item, item)
	unrelated := bitvec.Random(256, r)
	got, ok := m.Read(unrelated)
	if !ok {
		return // acceptable: nothing activated
	}
	if sim := got.Similarity(item); sim > 0.75 {
		t.Errorf("unrelated read too similar to stored item: %v", sim)
	}
}

func TestReadNoActivationsReportsNotOK(t *testing.T) {
	// Radius 0: only an exact address match activates.
	m := New(Config{Dim: 128, Locations: 4, Radius: 0, Seed: 12})
	if _, ok := m.Read(bitvec.New(128)); ok {
		t.Error("read with no activated locations returned ok")
	}
	if _, _, ok := m.ReadIterative(bitvec.New(128), 3); ok {
		t.Error("iterative read with no activations returned ok")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	m := testMemory(13)
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	m.Write(bitvec.New(64), bitvec.New(64))
}

func TestCapacityDegradation(t *testing.T) {
	// Recall quality degrades gracefully (not catastrophically) as more
	// items are stored — the sparse-distributed property.
	m := testMemory(14)
	r := rng.New(15)
	var items []*bitvec.Vector
	recallErr := func() float64 {
		var sum float64
		for _, it := range items {
			got, ok := m.Read(it)
			if !ok {
				sum++
				continue
			}
			sum += got.Distance(it)
		}
		return sum / float64(len(items))
	}
	for i := 0; i < 10; i++ {
		v := bitvec.Random(256, r)
		items = append(items, v)
		m.Write(v, v)
	}
	few := recallErr()
	for i := 0; i < 40; i++ {
		v := bitvec.Random(256, r)
		items = append(items, v)
		m.Write(v, v)
	}
	many := recallErr()
	if few > 0.1 {
		t.Errorf("light-load recall error %v too high", few)
	}
	if many > 0.4 {
		t.Errorf("heavy-load recall error %v catastrophically high", many)
	}
}

func TestActivationRadiusMonotone(t *testing.T) {
	// Larger tail probability → larger radius.
	r1 := activationRadius(1000, 0.01)
	r2 := activationRadius(1000, 0.001)
	if r1 <= r2 {
		t.Errorf("radius p=0.01 (%d) should exceed p=0.001 (%d)", r1, r2)
	}
	if activationRadius(4, 0.0001) < 0 {
		t.Error("tiny-dimension radius went negative")
	}
}

func TestSqrtf(t *testing.T) {
	for _, x := range []float64{0, 1, 2, 100, 10000} {
		got := sqrtf(x)
		want := math.Sqrt(x)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("sqrtf(%v) = %v, want %v", x, got, want)
		}
	}
}
