package sdm

import (
	"bytes"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
)

func testConfig() Config {
	return Config{Dim: 256, Locations: 200, Radius: 100, Seed: 3}
}

func TestMemoryStateRoundTrip(t *testing.T) {
	cfg := testConfig()
	src := rng.New(41)
	a := New(cfg)
	words := make([]*bitvec.Vector, 6)
	for i := range words {
		words[i] = bitvec.Random(cfg.Dim, src)
		a.Write(words[i], words[i])
	}

	var buf bytes.Buffer
	n, err := a.WriteStateTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteStateTo reported %d bytes, wrote %d", n, buf.Len())
	}
	b := New(cfg)
	if err := b.RestoreStateFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if b.Writes() != a.Writes() {
		t.Fatalf("restored write count %d, want %d", b.Writes(), a.Writes())
	}

	// Reads, continued writes and forks must agree bit for bit.
	for i, w := range words {
		ra, oka := a.Read(w)
		rb, okb := b.Read(w)
		if oka != okb || (oka && !ra.Equal(rb)) {
			t.Fatalf("read %d diverged after restore", i)
		}
	}
	extra := bitvec.Random(cfg.Dim, rng.New(42))
	fa, fb := a.Fork(), b.Fork()
	fa.Write(extra, extra)
	fb.Write(extra, extra)
	ra, oka := fa.Read(extra)
	rb, okb := fb.Read(extra)
	if oka != okb || (oka && !ra.Equal(rb)) {
		t.Fatal("forked write diverged after restore")
	}
}

func TestRestoreStateRejectsMismatchAndGarbage(t *testing.T) {
	cfg := testConfig()
	a := New(cfg)
	w := bitvec.Random(cfg.Dim, rng.New(43))
	a.Write(w, w)
	var buf bytes.Buffer
	if _, err := a.WriteStateTo(&buf); err != nil {
		t.Fatal(err)
	}

	written := New(cfg)
	written.Write(w, w)
	if err := written.RestoreStateFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restore into a written memory accepted")
	}
	other := cfg
	other.Locations = 100
	if err := New(other).RestoreStateFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("location-count mismatch accepted")
	}
	if err := New(cfg).RestoreStateFrom(bytes.NewReader(buf.Bytes()[:20])); err == nil {
		t.Error("truncated stream accepted")
	}
	if err := New(cfg).RestoreStateFrom(bytes.NewReader([]byte("not an sdm stream at all..."))); err == nil {
		t.Error("garbage accepted")
	}
}
