package cluster

import (
	"fmt"

	"hdcirc/internal/hashring"
)

// Key construction. The cluster ring routes the same key strings the
// in-process serving ring routes — "class/<id>" for classifier classes,
// "item/<symbol>" for item-memory symbols — but over its own ring pinned
// by the manifest, so the cross-process assignment is independent of any
// one server's internal shard count.

// ClassKey returns the routing key for a global class id.
func ClassKey(class int) string { return fmt.Sprintf("class/%d", class) }

// ItemKey returns the routing key for an item-memory symbol.
func ItemKey(symbol string) string { return "item/" + symbol }

// ShardMember returns the ring member name of shard i.
func ShardMember(i int) string { return fmt.Sprintf("shard/%d", i) }

// Topology is the deterministic key→shard routing function derived from a
// manifest: a hypervector hashring with one member per shard, built from
// the manifest's pinned geometry. Construction is the only mutation;
// afterwards every method is a pure read, safe from any number of
// goroutines (the hashring documents this contract and internal/serve
// already relies on it).
type Topology struct {
	man     *Manifest
	ring    *hashring.Ring
	members []string // ring member name per shard, indexed by shard
	index   map[string]int
}

// NewTopology normalizes and validates the manifest, then builds the
// routing ring: members shard/0..shard/N-1 added in order. Because the
// hashring's placement is deterministic in (geometry, seed, insertion
// order), every participant handed the same manifest derives the same
// assignment — the property the golden-assignment tests pin.
func NewTopology(m *Manifest) (*Topology, error) {
	if m == nil {
		return nil, fmt.Errorf("cluster: nil manifest")
	}
	m.Normalize()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ring, err := hashring.New(m.RingPositions, m.RingDim, m.RingSeed)
	if err != nil {
		return nil, fmt.Errorf("cluster: building routing ring: %w", err)
	}
	t := &Topology{man: m, ring: ring, index: make(map[string]int, len(m.Shards))}
	for i := range m.Shards {
		name := ShardMember(i)
		if _, err := ring.Add(name); err != nil {
			return nil, fmt.Errorf("cluster: placing %s: %w", name, err)
		}
		t.members = append(t.members, name)
		t.index[name] = i
	}
	return t, nil
}

// Manifest returns the manifest the topology was built from. Callers must
// treat it as immutable.
func (t *Topology) Manifest() *Manifest { return t.man }

// NumShards returns the shard count.
func (t *Topology) NumShards() int { return len(t.members) }

// Endpoints returns shard i's endpoint set.
func (t *Topology) Endpoints(i int) ShardEndpoints { return t.man.Shards[i] }

// ShardForKey returns the shard that owns an arbitrary routing key.
func (t *Topology) ShardForKey(key string) int {
	name, ok := t.ring.Lookup(key)
	if !ok {
		return 0 // unreachable: Validate guarantees at least one member
	}
	return t.index[name]
}

// ShardForClass returns the shard that owns a global class id.
func (t *Topology) ShardForClass(class int) int {
	return t.ShardForKey(ClassKey(class))
}

// ShardForItem returns the shard that owns an item-memory symbol.
func (t *Topology) ShardForItem(symbol string) int {
	return t.ShardForKey(ItemKey(symbol))
}

// ClassesOwnedBy returns the ascending global class ids (of a model with
// `classes` total) owned by shard i — the selection a scatter-gather
// client applies to each shard's score vector so foreign-class rows
// (untrained tie-vector prototypes on that shard) can never leak into a
// merge.
func (t *Topology) ClassesOwnedBy(shard, classes int) []int {
	var out []int
	for c := 0; c < classes; c++ {
		if t.ShardForClass(c) == shard {
			out = append(out, c)
		}
	}
	return out
}

// Node is one server's view of the tier: the shared topology plus its own
// shard index, the pair ownership enforcement needs.
type Node struct {
	*Topology
	Shard int
}

// NewNode builds a Node after checking the shard index is in range.
func NewNode(m *Manifest, shard int) (*Node, error) {
	t, err := NewTopology(m)
	if err != nil {
		return nil, err
	}
	if shard < 0 || shard >= t.NumShards() {
		return nil, fmt.Errorf("cluster: shard index %d out of range for %d shards", shard, t.NumShards())
	}
	return &Node{Topology: t, Shard: shard}, nil
}

// OwnsClass reports whether this node's shard owns the class.
func (n *Node) OwnsClass(class int) bool { return n.ShardForClass(class) == n.Shard }

// OwnsItem reports whether this node's shard owns the symbol.
func (n *Node) OwnsItem(symbol string) bool { return n.ShardForItem(symbol) == n.Shard }
