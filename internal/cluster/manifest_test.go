package cluster

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := testManifest(3)
	m.Version = 7
	m.Normalize()
	got, err := DecodeBinary(m.EncodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

// TestBinaryCorruptionDetected flips every byte position in turn and
// requires the decoder to reject each mutation — the whole-file CRC must
// leave no blind spots.
func TestBinaryCorruptionDetected(t *testing.T) {
	m := testManifest(2)
	m.Version = 3
	m.Normalize()
	enc := m.EncodeBinary()
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x41
		if dec, err := DecodeBinary(bad); err == nil {
			t.Fatalf("byte %d flipped yet decode succeeded: %+v", i, dec)
		}
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeBinary(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := DecodeBinary(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeJSON(t *testing.T) {
	data, err := json.Marshal(testManifest(2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 2 || m.RingPositions != 8 || m.RingDim != DefaultRingDim {
		t.Fatalf("JSON manifest decoded to %+v", m)
	}
	if _, err := Decode([]byte(`{"shards":[]}`)); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := Decode([]byte(`{"shards":[{"primary":""}]}`)); err == nil {
		t.Fatal("empty primary accepted")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestValidate(t *testing.T) {
	m := testManifest(2)
	m.RingPositions = 2 // < 2×shards after two shards
	if err := m.Validate(); err == nil {
		t.Fatal("undersized ring accepted")
	}
	m = testManifest(2)
	m.Normalize()
	m.RingDim = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative ring dim accepted")
	}
	m = testManifest(2)
	m.Shards[1].Replicas = []string{""}
	m.Normalize()
	if err := m.Validate(); err == nil {
		t.Fatal("empty replica URL accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	m := testManifest(3)
	m.Version = 12
	m.Normalize()
	path := filepath.Join(t.TempDir(), "cluster.hclu")
	if err := m.Save(nil, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("load after save:\n got %+v\nwant %+v", got, m)
	}

	// A JSON file loads through the same entry point.
	jsonPath := filepath.Join(t.TempDir(), "cluster.json")
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, jsonPath, data)
	got, err = Load(nil, jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("JSON load:\n got %+v\nwant %+v", got, m)
	}

	// Corruption on disk surfaces as ErrCorrupt.
	raw := m.EncodeBinary()
	raw[len(raw)/2] ^= 0xFF
	badPath := filepath.Join(t.TempDir(), "bad.hclu")
	writeFile(t, badPath, raw)
	if _, err := Load(nil, badPath); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt manifest load error = %v, want ErrCorrupt", err)
	}
}

func TestClone(t *testing.T) {
	m := testManifest(2)
	m.Normalize()
	c := m.Clone()
	if !reflect.DeepEqual(c, m) {
		t.Fatalf("clone differs: %+v vs %+v", c, m)
	}
	c.Shards[0].Replicas[0] = "mutated"
	if m.Shards[0].Replicas[0] == "mutated" {
		t.Fatal("clone shares replica slice with original")
	}
}
