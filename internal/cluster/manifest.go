// Package cluster composes N independent primary+replica serving groups
// into one logical horizontally-sharded tier. The replication layer
// (internal/repl) read-scales a single model; this package write-scales
// the tier: a versioned manifest pins the shard count and the hashring
// geometry every participant must agree on, and a Topology derived from
// it answers the only routing question that matters — which shard owns a
// given class or item key. Servers use the answer to refuse misrouted
// writes (the wrong_shard protocol error), clients use it to route
// requests and to split ingest streams per shard.
//
// The manifest travels in two encodings: HCLU, a whole-file-CRC'd binary
// format in the HSRV/HCKP family for artifacts that must detect
// corruption, and plain JSON for operator-authored files. Load sniffs
// the magic and accepts either.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"hdcirc/internal/vfs"
)

// Binary manifest layout (all integers little-endian):
//
//	magic "HCLU" | u32 format | u64 version
//	u32 ring_positions | u32 ring_dim | u64 ring_seed
//	u32 shard_count
//	per shard: framed primary URL, u32 replica_count, framed replica URLs
//	u32 CRC-32C over every preceding byte
//
// A framed string is u32 length + bytes. The CRC covers the whole file so
// any torn write or bit flip is detected before a single field is parsed.
const (
	manifestMagic  = "HCLU"
	manifestFormat = 1

	// maxManifestURL bounds a single framed URL so a corrupt length field
	// cannot drive a huge allocation before the CRC check would have
	// caught it (the CRC runs first; this is defense in depth for the
	// decoder itself).
	maxManifestURL = 4096
	// maxManifestShards bounds the shard count a decoder will accept.
	maxManifestShards = 1 << 16
)

// crcTable is the Castagnoli table shared by the repo's wire formats.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a manifest file that failed its whole-file CRC or
// structural bounds — the bytes cannot be trusted at all, as opposed to a
// well-formed manifest that fails validation.
var ErrCorrupt = fmt.Errorf("cluster: manifest corrupt")

// ShardEndpoints is one shard group's serving endpoints: the primary
// (write plane) and its replicas (read plane).
type ShardEndpoints struct {
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// Manifest is the versioned description of a sharded tier. Version orders
// topology changes (a client refreshing via GET /v1/cluster adopts a
// manifest only when its version is newer); the ring fields pin the
// hashring geometry — every server and client in the tier must build the
// routing ring from identical parameters or keys silently migrate.
type Manifest struct {
	Version       uint64           `json:"version"`
	RingPositions int              `json:"ring_positions,omitempty"`
	RingDim       int              `json:"ring_dim,omitempty"`
	RingSeed      uint64           `json:"ring_seed"`
	Shards        []ShardEndpoints `json:"shards"`
}

// DefaultRingDim is the position-hypervector dimension used when a
// manifest leaves RingDim zero. 1024 bits keeps position vectors well
// separated for any plausible shard count while staying cheap to build.
const DefaultRingDim = 1024

// Normalize fills the defaulted ring geometry in place: RingPositions
// defaults to max(8, 2×shards) rounded up to even (matching the
// in-process serving ring's sizing rule), RingDim to DefaultRingDim.
// Changing either default would remap keys, so both are pinned by the
// golden-assignment tests.
func (m *Manifest) Normalize() {
	if m.RingPositions == 0 {
		p := 2 * len(m.Shards)
		if p < 8 {
			p = 8
		}
		m.RingPositions = p
	}
	if m.RingPositions%2 != 0 {
		m.RingPositions++
	}
	if m.RingDim == 0 {
		m.RingDim = DefaultRingDim
	}
}

// Validate checks a manifest is usable: at least one shard, every shard
// with a non-empty primary, and ring geometry (after Normalize) that the
// hashring can actually host.
func (m *Manifest) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: manifest has no shards")
	}
	if len(m.Shards) > maxManifestShards {
		return fmt.Errorf("cluster: %d shards exceeds the %d limit", len(m.Shards), maxManifestShards)
	}
	for i, s := range m.Shards {
		if s.Primary == "" {
			return fmt.Errorf("cluster: shard %d has no primary endpoint", i)
		}
		if len(s.Primary) > maxManifestURL {
			return fmt.Errorf("cluster: shard %d primary URL exceeds %d bytes", i, maxManifestURL)
		}
		for j, r := range s.Replicas {
			if r == "" {
				return fmt.Errorf("cluster: shard %d replica %d is empty", i, j)
			}
			if len(r) > maxManifestURL {
				return fmt.Errorf("cluster: shard %d replica %d URL exceeds %d bytes", i, j, maxManifestURL)
			}
		}
	}
	if m.RingPositions < 2*len(m.Shards) {
		return fmt.Errorf("cluster: %d ring positions cannot host %d shards (need ≥ 2×)",
			m.RingPositions, len(m.Shards))
	}
	if m.RingDim <= 0 {
		return fmt.Errorf("cluster: ring dimension must be positive, got %d", m.RingDim)
	}
	return nil
}

// NumShards returns the shard count.
func (m *Manifest) NumShards() int { return len(m.Shards) }

// Clone returns a deep copy, so a server can hand its manifest to the
// wire layer without sharing replica slices.
func (m *Manifest) Clone() *Manifest {
	out := &Manifest{
		Version:       m.Version,
		RingPositions: m.RingPositions,
		RingDim:       m.RingDim,
		RingSeed:      m.RingSeed,
		Shards:        make([]ShardEndpoints, len(m.Shards)),
	}
	for i, s := range m.Shards {
		out.Shards[i] = ShardEndpoints{Primary: s.Primary}
		if len(s.Replicas) > 0 {
			out.Shards[i].Replicas = append([]string(nil), s.Replicas...)
		}
	}
	return out
}

// appendFramed appends a u32-length-prefixed string.
func appendFramed(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// EncodeBinary serializes the manifest in the HCLU format, CRC trailer
// included. The manifest should be normalized first so the geometry the
// CRC seals is the geometry everyone routes by.
func (m *Manifest) EncodeBinary() []byte {
	buf := make([]byte, 0, 64+32*len(m.Shards))
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, manifestFormat)
	buf = binary.LittleEndian.AppendUint64(buf, m.Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.RingPositions))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.RingDim))
	buf = binary.LittleEndian.AppendUint64(buf, m.RingSeed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Shards)))
	for _, s := range m.Shards {
		buf = appendFramed(buf, s.Primary)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Replicas)))
		for _, r := range s.Replicas {
			buf = appendFramed(buf, r)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// binReader walks the decoded byte stream with bounds checks; any
// overrun marks the manifest corrupt rather than panicking.
type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.err = ErrCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *binReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.err = ErrCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *binReader) framed() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > maxManifestURL || r.off+int(n) > len(r.buf) {
		r.err = ErrCorrupt
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// DecodeBinary parses an HCLU manifest. The whole-file CRC is verified
// before any field is interpreted; structural violations after a passing
// CRC (which would require a buggy encoder, not a torn write) still
// surface as ErrCorrupt rather than garbage values.
func DecodeBinary(data []byte) (*Manifest, error) {
	if len(data) < len(manifestMagic)+8 || string(data[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	r := &binReader{buf: body, off: len(manifestMagic)}
	if format := r.u32(); r.err == nil && format != manifestFormat {
		return nil, fmt.Errorf("cluster: unsupported manifest format %d (have %d)", format, manifestFormat)
	}
	m := &Manifest{}
	m.Version = r.u64()
	m.RingPositions = int(r.u32())
	m.RingDim = int(r.u32())
	m.RingSeed = r.u64()
	n := r.u32()
	if r.err == nil && n > maxManifestShards {
		return nil, fmt.Errorf("%w: shard count %d exceeds limit", ErrCorrupt, n)
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		var s ShardEndpoints
		s.Primary = r.framed()
		nr := r.u32()
		if r.err == nil && nr > maxManifestShards {
			r.err = ErrCorrupt
			break
		}
		for j := uint32(0); j < nr && r.err == nil; j++ {
			s.Replicas = append(s.Replicas, r.framed())
		}
		m.Shards = append(m.Shards, s)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-r.off)
	}
	return m, nil
}

// Decode parses a manifest from either encoding — HCLU binary when the
// magic matches, strict JSON otherwise — then normalizes and validates
// it, so every manifest that reaches routing code is usable as-is.
func Decode(data []byte) (*Manifest, error) {
	var m *Manifest
	if len(data) >= len(manifestMagic) && string(data[:len(manifestMagic)]) == manifestMagic {
		var err error
		if m, err = DecodeBinary(data); err != nil {
			return nil, err
		}
	} else {
		m = &Manifest{}
		if err := json.Unmarshal(data, m); err != nil {
			return nil, fmt.Errorf("cluster: parsing JSON manifest: %w", err)
		}
	}
	m.Normalize()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Load reads a manifest file through the filesystem seam (nil fs selects
// the real OS) and decodes it with Decode's format sniffing.
func Load(fs vfs.FS, path string) (*Manifest, error) {
	data, err := vfs.ReadFile(vfs.Default(fs), path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading manifest: %w", err)
	}
	m, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("cluster: manifest %s: %w", path, err)
	}
	return m, nil
}

// Save writes the manifest in HCLU binary form: temp file, fsync, atomic
// rename, directory fsync — the same publish discipline as checkpoints,
// so a crash mid-save never leaves a half-written manifest under the
// final name.
func (m *Manifest) Save(fs vfs.FS, path string) error {
	fsys := vfs.Default(fs)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: creating manifest temp file: %w", err)
	}
	if _, err := f.Write(m.EncodeBinary()); err != nil {
		f.Close()
		return fmt.Errorf("cluster: writing manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("cluster: syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cluster: closing manifest: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("cluster: publishing manifest: %w", err)
	}
	if dir := dirOf(path); dir != "" {
		if err := fsys.SyncDir(dir); err != nil {
			return fmt.Errorf("cluster: syncing manifest directory: %w", err)
		}
	}
	return nil
}

// dirOf returns path's directory, or "." when it has none.
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			if i == 0 {
				return string(path[0])
			}
			return path[:i]
		}
	}
	return "."
}
