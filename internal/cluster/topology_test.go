package cluster

import (
	"fmt"
	"testing"
)

// testManifest builds an n-shard manifest with the default geometry and
// ring seed 42 — the configuration the golden assignments below pin.
func testManifest(n int) *Manifest {
	m := &Manifest{RingSeed: 42}
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, ShardEndpoints{
			Primary:  fmt.Sprintf("http://127.0.0.1:%d", 8000+i),
			Replicas: []string{fmt.Sprintf("http://127.0.0.1:%d", 9000+i)},
		})
	}
	return m
}

// TestGoldenAssignments pins key→shard routing for the default geometry.
// These values are a compatibility contract: a sharded tier stores keys
// where the ring of its manifest places them, so any change to the ring's
// hash, the circular-set construction, the default geometry, or the
// member-placement strategy silently strands every stored key. If this
// test fails, the change is a resharding event — it must not ship as an
// accident.
func TestGoldenAssignments(t *testing.T) {
	goldenClasses := map[int][]int{
		// class id 0..15 → owning shard
		2: {1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1},
		3: {1, 2, 0, 1, 0, 1, 2, 0, 1, 2, 1, 0, 2, 1, 0, 2},
	}
	goldenItems := map[int]map[string]int{
		2: {"alpha": 0, "bravo": 0, "charlie": 0, "delta": 0, "echo": 1,
			"foxtrot": 1, "golf": 0, "hotel": 0, "india": 1, "juliet": 1},
		3: {"alpha": 0, "bravo": 0, "charlie": 2, "delta": 2, "echo": 2,
			"foxtrot": 1, "golf": 2, "hotel": 2, "india": 2, "juliet": 1},
	}
	for n, want := range goldenClasses {
		m := testManifest(n)
		top, err := NewTopology(m)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if m.RingPositions != 8 || m.RingDim != DefaultRingDim {
			t.Fatalf("shards=%d normalized to positions=%d dim=%d, goldens pinned at 8/%d",
				n, m.RingPositions, m.RingDim, DefaultRingDim)
		}
		for c, shard := range want {
			if got := top.ShardForClass(c); got != shard {
				t.Errorf("shards=%d: class %d routed to shard %d, golden %d", n, c, got, shard)
			}
		}
		for sym, shard := range goldenItems[n] {
			if got := top.ShardForItem(sym); got != shard {
				t.Errorf("shards=%d: item %q routed to shard %d, golden %d", n, sym, got, shard)
			}
		}
	}
}

// TestOwnershipPartition checks ClassesOwnedBy forms an exact partition:
// every class owned by exactly one shard, consistent with ShardForClass.
func TestOwnershipPartition(t *testing.T) {
	const classes = 64
	top, err := NewTopology(testManifest(3))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for s := 0; s < top.NumShards(); s++ {
		owned := top.ClassesOwnedBy(s, classes)
		if len(owned) == 0 {
			t.Errorf("shard %d owns no classes out of %d", s, classes)
		}
		for _, c := range owned {
			if prev, dup := seen[c]; dup {
				t.Fatalf("class %d owned by both shard %d and %d", c, prev, s)
			}
			seen[c] = s
			if top.ShardForClass(c) != s {
				t.Fatalf("ClassesOwnedBy(%d) lists class %d but ShardForClass says %d",
					s, c, top.ShardForClass(c))
			}
		}
	}
	if len(seen) != classes {
		t.Fatalf("partition covers %d of %d classes", len(seen), classes)
	}
}

// TestTopologyDeterminism: two topologies from equal manifests agree on
// every key — the property that lets servers and clients route
// independently.
func TestTopologyDeterminism(t *testing.T) {
	a, err := NewTopology(testManifest(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTopology(testManifest(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("class/%d", i)
		if a.ShardForKey(k) != b.ShardForKey(k) {
			t.Fatalf("topologies disagree on %s: %d vs %d", k, a.ShardForKey(k), b.ShardForKey(k))
		}
	}
}

func TestNodeOwnership(t *testing.T) {
	if _, err := NewNode(testManifest(2), 2); err == nil {
		t.Fatal("shard index 2 of 2 accepted")
	}
	if _, err := NewNode(testManifest(2), -1); err == nil {
		t.Fatal("negative shard index accepted")
	}
	n, err := NewNode(testManifest(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 32; c++ {
		if n.OwnsClass(c) != (n.ShardForClass(c) == 1) {
			t.Fatalf("OwnsClass(%d) inconsistent with ShardForClass", c)
		}
	}
	if n.OwnsItem("echo") != (n.ShardForItem("echo") == 1) {
		t.Fatal("OwnsItem inconsistent with ShardForItem")
	}
}
