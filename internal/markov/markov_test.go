package markov

import (
	"math"
	"testing"

	"hdcirc/internal/rng"
)

func TestSolveTridiagonalKnownSystem(t *testing.T) {
	// [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] → x = [1; 2; 3]
	lower := []float64{0, 1, 1}
	diag := []float64{2, 2, 2}
	upper := []float64{1, 1, 0}
	rhs := []float64{4, 8, 8}
	x, err := SolveTridiagonal(lower, diag, upper, rhs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveTridiagonalSingleRow(t *testing.T) {
	x, err := SolveTridiagonal([]float64{0}, []float64{4}, []float64{0}, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 {
		t.Errorf("x = %v, want 2", x[0])
	}
}

func TestSolveTridiagonalErrors(t *testing.T) {
	if _, err := SolveTridiagonal([]float64{0}, []float64{1, 2}, []float64{0}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SolveTridiagonal([]float64{0}, []float64{0}, []float64{0}, []float64{1}); err == nil {
		t.Error("zero pivot accepted")
	}
	if x, err := SolveTridiagonal(nil, nil, nil, nil); err != nil || x != nil {
		t.Error("empty system should be trivially solvable")
	}
}

func TestSolveTridiagonalResidual(t *testing.T) {
	// Random diagonally dominant system; verify A·x == rhs.
	r := rng.New(42)
	n := 200
	lower := make([]float64, n)
	diag := make([]float64, n)
	upper := make([]float64, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		lower[i] = r.Float64() - 0.5
		upper[i] = r.Float64() - 0.5
		diag[i] = 3 + r.Float64()
		rhs[i] = 10 * (r.Float64() - 0.5)
	}
	lower[0], upper[n-1] = 0, 0
	x, err := SolveTridiagonal(lower, diag, upper, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := diag[i] * x[i]
		if i > 0 {
			got += lower[i] * x[i-1]
		}
		if i < n-1 {
			got += upper[i] * x[i+1]
		}
		if math.Abs(got-rhs[i]) > 1e-9 {
			t.Fatalf("residual at row %d: %v", i, got-rhs[i])
		}
	}
}

func TestExpectedFlipsTrivial(t *testing.T) {
	// K=1: first step always moves away, so exactly one flip.
	f, err := ExpectedFlips(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-12 {
		t.Errorf("ExpectedFlips(d,1) = %v, want 1", f)
	}
}

func TestExpectedFlipsMatchesRecurrence(t *testing.T) {
	for _, d := range []int{64, 1000, 10000} {
		for _, frac := range []float64{0.01, 0.1, 0.25, 0.5} {
			k := int(frac * float64(d))
			if k < 1 {
				k = 1
			}
			a, err := ExpectedFlips(d, k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ExpectedFlipsRecurrence(d, k)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(a-b)/b > 1e-9 {
				t.Errorf("d=%d k=%d: Thomas %v vs recurrence %v", d, k, a, b)
			}
		}
	}
}

func TestExpectedFlipsAtLeastK(t *testing.T) {
	// The walk needs at least K steps to reach distance K; backtracking can
	// only add steps.
	for _, k := range []int{1, 10, 100, 2500} {
		f, err := ExpectedFlips(10000, k)
		if err != nil {
			t.Fatal(err)
		}
		if f < float64(k) {
			t.Errorf("k=%d: expected flips %v < k", k, f)
		}
	}
}

func TestExpectedFlipsMonotoneInK(t *testing.T) {
	d := 2000
	prev := 0.0
	for k := 1; k <= d/2; k += 37 {
		f, err := ExpectedFlipsRecurrence(d, k)
		if err != nil {
			t.Fatal(err)
		}
		if f <= prev {
			t.Fatalf("absorption time not increasing at k=%d: %v <= %v", k, f, prev)
		}
		prev = f
	}
}

func TestExpectedFlipsErrors(t *testing.T) {
	if _, err := ExpectedFlips(0, 1); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := ExpectedFlips(100, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ExpectedFlips(100, 101); err == nil {
		t.Error("k>d accepted")
	}
	if _, err := ExpectedFlipsRecurrence(100, 100); err == nil {
		t.Error("recurrence with k=d accepted")
	}
}

func TestAnalyticFlipsRoundTrip(t *testing.T) {
	d := 10000
	for _, delta := range []float64{0.01, 0.1, 0.25, 0.4, 0.49} {
		f, err := AnalyticFlips(d, delta)
		if err != nil {
			t.Fatal(err)
		}
		back := DistanceAfterFlips(d, f)
		if math.Abs(back-delta) > 1e-12 {
			t.Errorf("delta=%v: round trip gives %v", delta, back)
		}
	}
}

func TestAnalyticFlipsErrors(t *testing.T) {
	for _, delta := range []float64{0, -0.1, 0.5, 0.9} {
		if _, err := AnalyticFlips(10000, delta); err == nil {
			t.Errorf("delta=%v accepted", delta)
		}
	}
	if _, err := AnalyticFlips(1, 0.1); err == nil {
		t.Error("d=1 accepted")
	}
}

func TestMarkovVsAnalyticOrdering(t *testing.T) {
	// First-hitting flips ≤ analytic with-replacement flips: the walk that
	// stops on arrival never wastes backtracking steps past the boundary,
	// while the analytic count must overcome expected backsliding to land
	// at Δ in expectation. They agree asymptotically for small Δ.
	d := 10000
	for _, delta := range []float64{0.05, 0.1, 0.2, 0.4} {
		k := int(delta * float64(d))
		markovF, err := ExpectedFlipsRecurrence(d, k)
		if err != nil {
			t.Fatal(err)
		}
		analyticF, err := AnalyticFlips(d, delta)
		if err != nil {
			t.Fatal(err)
		}
		if markovF > analyticF {
			t.Errorf("delta=%v: markov %v > analytic %v", delta, markovF, analyticF)
		}
		if delta <= 0.1 && (analyticF-markovF)/analyticF > 0.05 {
			t.Errorf("delta=%v: markov %v and analytic %v should be within 5%%", delta, markovF, analyticF)
		}
	}
}

func TestExpectedFlipsSmallDeltaNearLinear(t *testing.T) {
	// For K ≪ d backtracking is rare: u(0) ≈ K.
	d := 100000
	k := 100
	f, err := ExpectedFlipsRecurrence(d, k)
	if err != nil {
		t.Fatal(err)
	}
	if f < float64(k) || f > float64(k)*1.01 {
		t.Errorf("u(0)=%v should be within 1%% of K=%d for K≪d", f, k)
	}
}

func TestAbsorptionTimesDecreasing(t *testing.T) {
	// u(k) decreases in k: starting closer to the boundary takes less time.
	u, err := AbsorptionTimes(1000, 300)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(u); k++ {
		if u[k] >= u[k-1] {
			t.Fatalf("u(%d)=%v >= u(%d)=%v", k, u[k], k-1, u[k-1])
		}
	}
}

// Monte-Carlo validation: simulate the walk and compare the empirical mean
// first-hitting time with the solver.
func TestAbsorptionMonteCarlo(t *testing.T) {
	d, k := 256, 64
	want, err := ExpectedFlipsRecurrence(d, k)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	const trials = 3000
	var total float64
	for tr := 0; tr < trials; tr++ {
		state := 0
		steps := 0
		for state < k {
			steps++
			if r.Float64() < float64(d-state)/float64(d) {
				state++
			} else {
				state--
			}
		}
		total += float64(steps)
	}
	got := total / trials
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("Monte-Carlo mean %v vs solver %v (>5%% off)", got, want)
	}
}
