// Package markov implements the bit-flip Markov chain of the paper's
// Section 4.2. States are Hamming distances 0, 1/d, 2/d, … from a reference
// hypervector; each step flips one uniformly random position, moving away
// from the reference with probability (d−k)/d and back with probability
// k/d. The expected number of steps until first reaching the target
// distance Δ — the absorption time u(0) — is the number of flips a scatter
// code performs to realize an expected distance of Δ.
//
// The absorption times satisfy the tridiagonal linear system
//
//	u(K)   = 0
//	u(0)   = 1 + u(1)
//	u(k)   = 1 + ((d−k)·u(k+1) + k·u(k−1))/d      for 0 < k < K
//
// with K = Δ·d. The package provides two independent solvers (the Thomas
// elimination the paper alludes to via Stone's tridiagonal reference, and a
// closed forward recurrence over successive differences) plus the analytic
// flips-with-replacement inverse used as a sanity bound.
package markov

import (
	"errors"
	"fmt"
	"math"
)

// SolveTridiagonal solves a·x = rhs for a tridiagonal matrix given by its
// sub-, main- and super-diagonals (lower[0] and upper[n-1] are ignored)
// using the Thomas algorithm. It returns an error when a zero pivot is
// encountered; the absorption system is strictly diagonally dominant, so
// that never happens for valid inputs. The inputs are not modified.
func SolveTridiagonal(lower, diag, upper, rhs []float64) ([]float64, error) {
	n := len(diag)
	if len(lower) != n || len(upper) != n || len(rhs) != n {
		return nil, fmt.Errorf("markov: diagonal lengths disagree (%d/%d/%d/%d)",
			len(lower), len(diag), len(upper), len(rhs))
	}
	if n == 0 {
		return nil, nil
	}
	cp := make([]float64, n) // modified super-diagonal
	dp := make([]float64, n) // modified rhs
	if diag[0] == 0 {
		return nil, errors.New("markov: zero pivot at row 0")
	}
	cp[0] = upper[0] / diag[0]
	dp[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - lower[i]*cp[i-1]
		if den == 0 {
			return nil, fmt.Errorf("markov: zero pivot at row %d", i)
		}
		cp[i] = upper[i] / den
		dp[i] = (rhs[i] - lower[i]*dp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}

// AbsorptionTimes returns the full vector u(0..K-1) of expected step counts
// to first reach state K in a chain over dimension d, solved with the
// Thomas algorithm. u(K) = 0 is implicit. K must satisfy 0 < K <= d/2 for a
// meaningful scatter target (distances beyond 1/2 are not used by any basis
// set); values up to d are accepted.
func AbsorptionTimes(d, targetK int) ([]float64, error) {
	if d <= 0 {
		return nil, fmt.Errorf("markov: dimension %d must be positive", d)
	}
	if targetK <= 0 || targetK > d {
		return nil, fmt.Errorf("markov: target state %d outside (0,%d]", targetK, d)
	}
	n := targetK // unknowns u(0..K-1)
	lower := make([]float64, n)
	diag := make([]float64, n)
	upper := make([]float64, n)
	rhs := make([]float64, n)
	fd := float64(d)
	// Row 0: u(0) − u(1) = 1. When K == 1, u(1) = u(K) = 0 and the single
	// equation is u(0) = 1.
	diag[0], rhs[0] = 1, 1
	if n > 1 {
		upper[0] = -1
	}
	for k := 1; k < n; k++ {
		// −(k/d)·u(k−1) + u(k) − ((d−k)/d)·u(k+1) = 1
		lower[k] = -float64(k) / fd
		diag[k] = 1
		rhs[k] = 1
		if k+1 < n {
			upper[k] = -(fd - float64(k)) / fd
		}
		// when k+1 == K the u(k+1) term is zero and simply drops out
	}
	return SolveTridiagonal(lower, diag, upper, rhs)
}

// ExpectedFlips returns u(0): the expected number of single-bit flips until
// the walk first reaches Hamming distance targetK from its start, in
// dimension d. This is 𝔉 in the paper — the flip budget that realizes
// expected distance Δ = targetK/d.
func ExpectedFlips(d, targetK int) (float64, error) {
	u, err := AbsorptionTimes(d, targetK)
	if err != nil {
		return 0, err
	}
	return u[0], nil
}

// ExpectedFlipsRecurrence computes u(0) by the closed forward recurrence
// over successive differences w(k) = u(k) − u(k+1):
//
//	w(0) = 1
//	w(k) = (d + k·w(k−1)) / (d − k)
//	u(0) = Σ_{k=0}^{K−1} w(k)
//
// It is an independent O(K) derivation used to cross-check the tridiagonal
// solver (and is the faster choice on large K).
func ExpectedFlipsRecurrence(d, targetK int) (float64, error) {
	if d <= 0 {
		return 0, fmt.Errorf("markov: dimension %d must be positive", d)
	}
	if targetK <= 0 || targetK > d {
		return 0, fmt.Errorf("markov: target state %d outside (0,%d]", targetK, d)
	}
	if targetK == d {
		// d − k hits zero at k = d−1 only when targetK == d; the final
		// difference then comes from the pure backward step balance. The
		// scatter generator never asks for Δ = 1, so treat it as invalid.
		return 0, errors.New("markov: target distance 1.0 is unreachable in expectation")
	}
	fd := float64(d)
	w := 1.0
	sum := 1.0
	for k := 1; k < targetK; k++ {
		w = (fd + float64(k)*w) / (fd - float64(k))
		sum += w
	}
	return sum, nil
}

// AnalyticFlips returns the real-valued flip count f such that performing f
// uniformly random flips *with replacement* yields expected normalized
// distance exactly delta: E[δ] after f flips is (1 − (1 − 2/d)^f)/2, so
//
//	f = ln(1 − 2δ) / ln(1 − 2/d).
//
// The first-hitting absorption time of ExpectedFlips is close to but
// slightly below this value for small δ (the walk that has just reached K
// for the first time has not yet had a chance to fall back). Both are
// exposed so the scatter generator can choose its calibration and the tests
// can bound one with the other.
func AnalyticFlips(d int, delta float64) (float64, error) {
	if d <= 1 {
		return 0, fmt.Errorf("markov: dimension %d must exceed 1", d)
	}
	if delta <= 0 || delta >= 0.5 {
		return 0, fmt.Errorf("markov: delta %v outside (0, 0.5)", delta)
	}
	return math.Log(1-2*delta) / math.Log(1-2/float64(d)), nil
}

// DistanceAfterFlips returns the expected normalized distance after f
// uniformly random flips with replacement in dimension d — the inverse of
// AnalyticFlips, used for round-trip testing and by the scatter generator's
// documentation of its nonlinearity.
func DistanceAfterFlips(d int, f float64) float64 {
	return (1 - math.Pow(1-2/float64(d), f)) / 2
}
