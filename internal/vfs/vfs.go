// Package vfs is the thin filesystem seam the durability layer sits on:
// a small interface covering exactly the operations the write-ahead log
// (internal/wal) and the checkpoint writer (internal/serve) perform, a
// passthrough OS implementation, and a deterministic fault-injecting
// implementation (FaultFS) that can return ENOSPC/EIO, cut writes short,
// tear them (persist only a prefix), or stall them — by operation count,
// by path pattern, by byte offset, or seeded-random.
//
// The seam exists so storage faults become testable: crash-consistency
// results (ALICE-style torn/partial-write schedules) and fail-slow/
// fail-partial storage studies all show that the faults that wreck
// durability layers in production are precisely the ones a unit test on a
// healthy filesystem never exercises. Production code paths take an FS
// value (nil selects OS); chaos tests hand the same code a FaultFS and
// assert the degradation contract instead of hoping.
package vfs

import (
	"fmt"
	"io"
	"os"
)

// File is the subset of *os.File the durability layer writes through.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file's data (and metadata) to stable storage.
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem operation set the durability layer needs. All paths
// are interpreted exactly as the os package would.
type FS interface {
	// OpenFile opens path with the given flag and permissions (os.O_*).
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// ReadDir lists the directory, sorted by name.
	ReadDir(path string) ([]os.DirEntry, error)
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// Rename atomically moves oldPath to newPath.
	Rename(oldPath, newPath string) error
	// Remove deletes the named file.
	Remove(path string) error
	// Truncate resizes the named file.
	Truncate(path string, size int64) error
	// Stat describes the named file.
	Stat(path string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making renames and creations within it
	// durable.
	SyncDir(path string) error
}

// OS is the passthrough implementation over the real filesystem. The zero
// value is ready to use.
type OS struct{}

// OpenFile opens path via os.OpenFile.
func (OS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// Open opens path read-only via os.Open.
func (OS) Open(path string) (File, error) { return os.Open(path) }

// ReadDir lists the directory via os.ReadDir.
func (OS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

// MkdirAll creates the directory tree via os.MkdirAll.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Rename moves oldPath to newPath via os.Rename.
func (OS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove deletes the file via os.Remove.
func (OS) Remove(path string) error { return os.Remove(path) }

// Truncate resizes the file via os.Truncate.
func (OS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// Stat describes the file via os.Stat.
func (OS) Stat(path string) (os.FileInfo, error) { return os.Stat(path) }

// SyncDir opens the directory and fsyncs it.
func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("vfs: opening directory for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("vfs: syncing directory: %w", err)
	}
	return nil
}

// Default returns fs, or the passthrough OS filesystem when fs is nil —
// the resolution every FS-taking config performs.
func Default(fs FS) FS {
	if fs == nil {
		return OS{}
	}
	return fs
}

// ReadFile reads the whole named file through fs (so injected read faults
// apply), mirroring os.ReadFile.
func ReadFile(fs FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
