package vfs

import (
	"os"
	"strings"
	"sync"
	"syscall"
	"time"

	"hdcirc/internal/rng"
)

// Injected fault errors. They wrap the real syscall errno so code (and
// tests) matching errors.Is(err, syscall.ENOSPC) behaves exactly as it
// would against a genuinely full or dying disk.
var (
	// ErrNoSpace is an injected ENOSPC: the disk is full.
	ErrNoSpace = &os.PathError{Op: "write", Path: "<injected>", Err: syscall.ENOSPC}
	// ErrIO is an injected EIO: the device is failing.
	ErrIO = &os.PathError{Op: "write", Path: "<injected>", Err: syscall.EIO}
)

// Op names a filesystem operation class for fault matching.
type Op string

const (
	// OpOpen matches read-only opens (and OpenFile without O_CREATE).
	OpOpen Op = "open"
	// OpCreate matches OpenFile calls carrying O_CREATE.
	OpCreate Op = "create"
	// OpRead matches File.Read.
	OpRead Op = "read"
	// OpWrite matches File.Write.
	OpWrite Op = "write"
	// OpSync matches File.Sync.
	OpSync Op = "sync"
	// OpSyncDir matches FS.SyncDir.
	OpSyncDir Op = "syncdir"
	// OpRename matches FS.Rename (matched against the old path).
	OpRename Op = "rename"
	// OpRemove matches FS.Remove.
	OpRemove Op = "remove"
	// OpTruncate matches FS.Truncate.
	OpTruncate Op = "truncate"
)

// Fault is one armed failure rule. The zero value of each field widens the
// match (any path, fire immediately, fire forever, probability 1).
type Fault struct {
	// Op is the operation class the fault applies to (required).
	Op Op
	// Path narrows the fault to paths containing this substring; empty
	// matches every path.
	Path string
	// Err is returned by matching operations. Nil makes the fault benign —
	// combined with Delay it models a fail-slow disk that stalls but
	// eventually succeeds.
	Err error
	// After skips this many matching operations before the fault starts
	// firing — "the 3rd append fails".
	After int
	// Count bounds how many times the fault fires; 0 fires until cleared.
	Count int
	// Prob, in (0,1), fires the fault on a matching operation with this
	// probability, drawn from the FaultFS's seeded stream; 0 (and >= 1)
	// fires deterministically.
	Prob float64
	// AtOffset, when > 0 and Op is OpWrite, fires only when the write spans
	// that byte offset of the file. (An offset-0 trigger is just the first
	// write: use After/Count.)
	AtOffset int64
	// KeepBytes, for a failing OpWrite, persists that many leading bytes of
	// the buffer to the underlying file before returning Err — the torn
	// write: what a crashed kernel leaves behind is a prefix, not nothing.
	// 0 persists nothing.
	KeepBytes int
	// Delay stalls matching operations before they execute (or fail) — the
	// fail-slow mode.
	Delay time.Duration
}

// armed is a Fault plus its live counters.
type armed struct {
	Fault
	seen  int // matching ops observed
	fired int // times actually fired
}

// FaultFS wraps an inner FS and injects the armed faults into matching
// operations. All methods are safe for concurrent use. With no faults
// armed every operation passes straight through (plus an op counter), so a
// FaultFS can stay in place for a whole test or benchmark.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	faults []*armed
	src    *rng.Stream
	counts map[Op]uint64
	fired  uint64
}

// NewFaultFS builds a FaultFS over inner (nil selects the OS filesystem)
// with no faults armed and the probability stream seeded at 1.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: Default(inner), src: rng.New(1), counts: make(map[Op]uint64)}
}

// Seed reseeds the stream behind probabilistic faults, making a random
// schedule reproducible.
func (f *FaultFS) Seed(seed uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.src = rng.New(seed)
}

// Arm adds a fault rule. Rules are evaluated in arming order; the first
// one that fires wins.
func (f *FaultFS) Arm(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = append(f.faults, &armed{Fault: fault})
}

// Clear disarms every fault — the disk is healthy again. Op counters are
// preserved.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nil
}

// Ops reports how many operations of the class have been observed
// (injected or not).
func (f *FaultFS) Ops(op Op) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// Fired reports how many faults have been injected so far.
func (f *FaultFS) Fired() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// match records one operation and returns a copy of the fault that fires
// on it, if any. offset/length describe writes (for AtOffset matching);
// other ops pass -1/0.
func (f *FaultFS) match(op Op, path string, offset int64, length int) (Fault, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	for _, a := range f.faults {
		if a.Op != op {
			continue
		}
		if a.Path != "" && !strings.Contains(path, a.Path) {
			continue
		}
		if a.AtOffset > 0 {
			if op != OpWrite || offset < 0 || offset > a.AtOffset || a.AtOffset >= offset+int64(length) {
				continue
			}
		}
		a.seen++
		if a.seen <= a.After {
			continue
		}
		if a.Count > 0 && a.fired >= a.Count {
			continue
		}
		if a.Prob > 0 && a.Prob < 1 && f.src.Float64() >= a.Prob {
			continue
		}
		a.fired++
		f.fired++
		return a.Fault, true
	}
	return Fault{}, false
}

// inject runs the shared fire behavior for non-write ops: stall, then fail
// if the fault carries an error.
func (f *FaultFS) inject(op Op, path string) error {
	fault, ok := f.match(op, path, -1, 0)
	if !ok {
		return nil
	}
	if fault.Delay > 0 {
		time.Sleep(fault.Delay)
	}
	return fault.Err
}

// OpenFile opens path, injecting OpCreate or OpOpen faults.
func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	op := OpOpen
	if flag&os.O_CREATE != 0 {
		op = OpCreate
	}
	if err := f.inject(op, path); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file, name: path}, nil
}

// Open opens path read-only, injecting OpOpen faults.
func (f *FaultFS) Open(path string) (File, error) {
	return f.OpenFile(path, os.O_RDONLY, 0)
}

// ReadDir lists the directory on the inner filesystem (not a fault target).
func (f *FaultFS) ReadDir(path string) ([]os.DirEntry, error) { return f.inner.ReadDir(path) }

// MkdirAll creates the directory tree on the inner filesystem (not a
// fault target).
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }

// Rename moves oldPath to newPath, injecting OpRename faults (matched
// against oldPath).
func (f *FaultFS) Rename(oldPath, newPath string) error {
	if err := f.inject(OpRename, oldPath); err != nil {
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

// Remove deletes path, injecting OpRemove faults.
func (f *FaultFS) Remove(path string) error {
	if err := f.inject(OpRemove, path); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

// Truncate resizes path, injecting OpTruncate faults.
func (f *FaultFS) Truncate(path string, size int64) error {
	if err := f.inject(OpTruncate, path); err != nil {
		return err
	}
	return f.inner.Truncate(path, size)
}

// Stat describes path on the inner filesystem (not a fault target).
func (f *FaultFS) Stat(path string) (os.FileInfo, error) { return f.inner.Stat(path) }

// SyncDir fsyncs the directory, injecting OpSyncDir faults.
func (f *FaultFS) SyncDir(path string) error {
	if err := f.inject(OpSyncDir, path); err != nil {
		return err
	}
	return f.inner.SyncDir(path)
}

// faultFile wraps an open file, tracking the write position so AtOffset
// faults and torn writes know where the knife lands.
type faultFile struct {
	fs    *FaultFS
	inner File
	name  string
	pos   int64
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.fs.inject(OpRead, ff.name); err != nil {
		return 0, err
	}
	n, err := ff.inner.Read(p)
	ff.pos += int64(n)
	return n, err
}

// Write injects OpWrite faults: a firing fault persists only the first
// KeepBytes bytes (the torn prefix) before returning its error, so the
// on-disk state afterwards is exactly what a crash mid-write leaves.
func (ff *faultFile) Write(p []byte) (int, error) {
	fault, fired := ff.fs.match(OpWrite, ff.name, ff.pos, len(p))
	if fired && fault.Delay > 0 {
		time.Sleep(fault.Delay)
	}
	if fired && fault.Err != nil {
		keep := fault.KeepBytes
		if keep > len(p) {
			keep = len(p)
		}
		n := 0
		if keep > 0 {
			n, _ = ff.inner.Write(p[:keep])
		}
		ff.pos += int64(n)
		return n, fault.Err
	}
	n, err := ff.inner.Write(p)
	ff.pos += int64(n)
	return n, err
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := ff.inner.Seek(offset, whence)
	if err == nil {
		ff.pos = pos
	}
	return pos, err
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.inject(OpSync, ff.name); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }

func (ff *faultFile) Name() string { return ff.name }
