package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func writeThrough(t *testing.T, fs FS, path string, data []byte) (int, error) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	return f.Write(data)
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := Default(nil)
	path := filepath.Join(dir, "a.bin")
	if _, err := writeThrough(t, fs, path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	raw, err := ReadFile(fs, path)
	if err != nil || string(raw) != "hello" {
		t.Fatalf("ReadFile = %q, %v", raw, err)
	}
	if err := fs.Rename(path, filepath.Join(dir, "b.bin")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(filepath.Join(dir, "b.bin"), 2); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat(filepath.Join(dir, "b.bin"))
	if err != nil || fi.Size() != 2 {
		t.Fatalf("Stat after truncate: %v, %v", fi, err)
	}
	entries, err := fs.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("ReadDir: %d entries, %v", len(entries), err)
	}
	if err := fs.Remove(filepath.Join(dir, "b.bin")); err != nil {
		t.Fatal(err)
	}
}

func TestFaultByOpCountAndCount(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	// Third and fourth writes fail with ENOSPC, everything else succeeds.
	ffs.Arm(Fault{Op: OpWrite, Err: ErrNoSpace, After: 2, Count: 2})
	path := filepath.Join(dir, "w.bin")
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 6; i++ {
		_, err := f.Write([]byte{byte(i)})
		wantFail := i == 2 || i == 3
		if wantFail != (err != nil) {
			t.Fatalf("write %d: err=%v, want failure=%v", i, err, wantFail)
		}
		if wantFail && !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d: error %v is not ENOSPC", i, err)
		}
	}
	if got := ffs.Fired(); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	if got := ffs.Ops(OpWrite); got != 6 {
		t.Fatalf("Ops(write) = %d, want 6", got)
	}
}

func TestFaultByPathPattern(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	ffs.Arm(Fault{Op: OpSync, Path: ".seg", Err: ErrIO})
	seg, err := ffs.OpenFile(filepath.Join(dir, "wal-1.seg"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	other, err := ffs.OpenFile(filepath.Join(dir, "ckpt-1.hckp"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := seg.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("segment sync error %v, want EIO", err)
	}
	if err := other.Sync(); err != nil {
		t.Fatalf("non-matching sync failed: %v", err)
	}
}

func TestTornWritePersistsPrefixOnly(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	ffs.Arm(Fault{Op: OpWrite, Err: ErrIO, KeepBytes: 3, Count: 1})
	path := filepath.Join(dir, "torn.bin")
	n, err := writeThrough(t, ffs, path, []byte("abcdefgh"))
	if n != 3 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write returned (%d, %v), want (3, EIO)", n, err)
	}
	raw, rerr := os.ReadFile(path)
	if rerr != nil || string(raw) != "abc" {
		t.Fatalf("on-disk bytes %q, want the 3-byte prefix", raw)
	}
	// Fault exhausted: the next write goes through whole.
	if _, err := writeThrough(t, ffs, path, []byte("XY")); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	if string(raw) != "abcXY" {
		t.Fatalf("after clear, bytes %q", raw)
	}
}

func TestFaultAtByteOffset(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	// Fail the write that spans byte 10 of the file.
	ffs.Arm(Fault{Op: OpWrite, Err: ErrNoSpace, AtOffset: 10})
	f, err := ffs.OpenFile(filepath.Join(dir, "off.bin"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, 8)); err != nil { // [0,8): clean
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 4)); !errors.Is(err, syscall.ENOSPC) { // [8,12) spans 10
		t.Fatalf("spanning write: %v, want ENOSPC", err)
	}
}

func TestSeededRandomFaultDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		dir := t.TempDir()
		ffs := NewFaultFS(nil)
		ffs.Seed(seed)
		ffs.Arm(Fault{Op: OpWrite, Err: ErrIO, Prob: 0.3})
		f, err := ffs.OpenFile(filepath.Join(dir, "p.bin"), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var failedAt []int
		for i := 0; i < 40; i++ {
			if _, err := f.Write([]byte{1}); err != nil {
				failedAt = append(failedAt, i)
			}
		}
		return failedAt
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("prob 0.3 over 40 writes fired %d times — not probabilistic", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestClearHealsTheDisk(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	ffs.Arm(Fault{Op: OpWrite, Err: ErrNoSpace})
	path := filepath.Join(dir, "heal.bin")
	if _, err := writeThrough(t, ffs, path, []byte("x")); err == nil {
		t.Fatal("armed fault did not fire")
	}
	ffs.Clear()
	if _, err := writeThrough(t, ffs, path, []byte("x")); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
}

func TestDelayOnlyFaultIsFailSlow(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	ffs.Arm(Fault{Op: OpSync, Delay: 30 * time.Millisecond, Count: 1})
	f, err := ffs.OpenFile(filepath.Join(dir, "slow.bin"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatalf("delay-only fault returned error: %v", err)
	}
	if took := time.Since(start); took < 20*time.Millisecond {
		t.Fatalf("sync returned in %v, want the injected stall", took)
	}
}

func TestRenameAndSyncDirFaults(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	path := filepath.Join(dir, "t.tmp")
	if _, err := writeThrough(t, ffs, path, []byte("v")); err != nil {
		t.Fatal(err)
	}
	ffs.Arm(Fault{Op: OpRename, Err: ErrIO, Count: 1})
	ffs.Arm(Fault{Op: OpSyncDir, Err: ErrIO, Count: 1})
	if err := ffs.Rename(path, filepath.Join(dir, "t.bin")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename: %v, want EIO", err)
	}
	if err := ffs.SyncDir(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("syncdir: %v, want EIO", err)
	}
	// Both exhausted.
	if err := ffs.Rename(path, filepath.Join(dir, "t.bin")); err != nil {
		t.Fatal(err)
	}
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
}

func TestReadFault(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	path := filepath.Join(dir, "r.bin")
	if _, err := writeThrough(t, ffs, path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ffs.Arm(Fault{Op: OpRead, Err: ErrIO, Count: 1})
	if _, err := ReadFile(ffs, path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("faulted read: %v, want EIO", err)
	}
	raw, err := ReadFile(ffs, path)
	if err != nil || string(raw) != "payload" {
		t.Fatalf("read after exhaustion: %q, %v", raw, err)
	}
}
