// Package httpapi is serving protocol v1: the versioned HTTP wire layer
// over the concurrency-safe, durable serving core (internal/serve). It
// owns everything both sides of the wire must agree on — the typed
// request/response structs, the structured error envelope with
// machine-readable codes, the NDJSON framing of the streaming bulk
// endpoints — and the server half that speaks it: an http.Handler with
// request hardening (bounded bodies, method and Content-Type enforcement,
// unknown-field rejection) and admission control (bounded in-flight work
// and queue depth; overload is a structured 429 with Retry-After, never
// unbounded queuing).
//
// The top-level client package consumes these same types, so server and
// client cannot drift; cmd/hdcserve is a thin flag shell over Handler.
//
// # Routes
//
//	POST /v1/train           one write batch (samples + item churn)
//	POST /v1/predict         classify a batch of feature records
//	POST /v1/scores          raw per-class Hamming distances (scatter-gather)
//	GET  /v1/lookup          ?key= ring routing, ?symbol= membership
//	POST /v1/lookup          nearest-symbol cleanup of a feature record
//	GET  /v1/stats           operational summary incl. durability state
//	GET  /v1/cluster         the tier's cluster manifest + this node's shard
//	GET  /v1/snapshot        binary snapshot download (HSRV stream)
//	GET  /v1/healthz         liveness + current version
//	POST /v1/predict:stream  NDJSON bulk classification
//	POST /v1/ingest:stream   NDJSON bulk training / item interning
//	POST /v1/replicate:stream NDJSON WAL shipping to followers (duplex)
//	POST /v1/admin/promote   promote this node to primary (Config.EnableAdmin)
//
// # Error envelope
//
// Every non-2xx JSON response is {"error":{"code":…,"message":…}} where
// code is one of the Code* constants below; each code maps to a fixed
// HTTP status (Error.HTTPStatus). Overload responses additionally carry
// retry_after_ms in the envelope and a Retry-After header.
//
// # Streaming framing
//
// Both stream endpoints exchange NDJSON: one JSON object per \n-terminated
// line. Rows are coalesced server-side into batches of Config.StreamBatch
// rows, so a bulk load costs one snapshot publication per batch, not per
// row. Because the HTTP status is committed before the stream ends, a
// mid-stream fault is reported in band: one final line whose "error" field
// is set, after which the server closes the stream. Ingest acknowledges
// each applied batch with {"version","rows"} and finishes with a summary
// line {"done":true,...}; predict emits exactly one result line per input
// row, in order.
package httpapi

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// Code is a machine-readable error class carried in the error envelope.
// Codes are the protocol's stable vocabulary: clients branch on them (the
// retry policy keys off CodeOverloaded), operators grep for them, and each
// maps to a fixed HTTP status.
type Code string

const (
	// CodeInvalidRequest: the request parsed but violates the contract
	// (wrong arity, class out of range, empty batch, NaN feature…). 400.
	CodeInvalidRequest Code = "invalid_request"
	// CodeMalformedBody: the body is not the JSON shape the endpoint
	// expects — syntax errors, wrong types, unknown fields. 400.
	CodeMalformedBody Code = "malformed_body"
	// CodeUnsupportedMedia: the Content-Type is not acceptable. 415.
	CodeUnsupportedMedia Code = "unsupported_media_type"
	// CodeMethodNotAllowed: wrong HTTP method for the route. 405.
	CodeMethodNotAllowed Code = "method_not_allowed"
	// CodeNotFound: unknown route, or a lookup with no interned items. 404.
	CodeNotFound Code = "not_found"
	// CodeBodyTooLarge: the body exceeded Config.MaxBodyBytes (or one
	// stream row exceeded Config.MaxRowBytes). 413.
	CodeBodyTooLarge Code = "body_too_large"
	// CodeOverloaded: admission control rejected the request — in-flight
	// and queue slots are all taken. Retry after the hinted delay. 429.
	CodeOverloaded Code = "overloaded"
	// CodeUnavailable: the server can no longer accept this request class —
	// closed, or the write-ahead log failed sticky. Reads may still work. 503.
	CodeUnavailable Code = "unavailable"
	// CodeReadOnly: the server is in degraded read-only mode — a storage
	// fault stopped the write plane while reads keep serving. Writes are
	// worth retrying after the hinted delay (the degraded server may
	// auto-recover); reads are unaffected. 503 with Retry-After.
	CodeReadOnly Code = "read_only"
	// CodeDeadlineExceeded: the request's server-side deadline expired
	// before the work ran (typically while queued behind a slow disk or a
	// saturated gate). The request was NOT applied. 504.
	CodeDeadlineExceeded Code = "deadline_exceeded"
	// CodeInternal: a fault on the server side that is not the client's
	// doing. 500.
	CodeInternal Code = "internal"
	// CodeNotPrimary: a write (or a replication connection) reached a
	// follower that knows where the primary is. The envelope carries
	// primary_url; clients fail the request over there instead of
	// retrying here. 421.
	CodeNotPrimary Code = "not_primary"
	// CodeFollowerReadOnly: a write reached a follower that does NOT know
	// its primary (mid-failover, or a follower started without
	// -primary-url). The write is worth retrying after the hinted delay —
	// a promotion or reconfiguration may land; reads are unaffected. 503
	// with Retry-After.
	CodeFollowerReadOnly Code = "follower_read_only"
	// CodeStaleSeq: a replication stream asked for a from_seq the primary
	// cannot serve as a log suffix — the follower is ahead of the
	// primary's head (diverged) or a checkpoint seed could not be
	// produced. The follower must re-seed from a checkpoint (reconnect
	// with from_seq 0 to request one). 409.
	CodeStaleSeq Code = "stale_seq"
	// CodeWrongShard: a write carried a class or item key this shard does
	// not own under the cluster manifest. The envelope names the offending
	// key and carries the owning shard's endpoints (owner_shard,
	// owner_primary_url, owner_replica_urls) so clients reroute instead of
	// retrying here — the shard-tier analogue of CodeNotPrimary, and like
	// it the request was NOT applied (ownership is validated before any
	// row is buffered). 421.
	CodeWrongShard Code = "wrong_shard"
)

// Error is the structured fault both halves of the protocol share: the
// body of every non-2xx JSON response, and the error type the client
// returns for server-reported faults. It implements error.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS hints when a CodeOverloaded request is worth retrying,
	// mirroring the Retry-After header (which is whole seconds only).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// PrimaryURL accompanies CodeNotPrimary: the base URL of the primary
	// this follower replicates from, for client-side failover.
	PrimaryURL string `json:"primary_url,omitempty"`
	// OwnerShard, OwnerPrimaryURL and OwnerReplicaURLs accompany
	// CodeWrongShard: the shard that owns the misrouted key and its
	// endpoints under this server's manifest, for client-side rerouting.
	OwnerShard       *int     `json:"owner_shard,omitempty"`
	OwnerPrimaryURL  string   `json:"owner_primary_url,omitempty"`
	OwnerReplicaURLs []string `json:"owner_replica_urls,omitempty"`
}

// Error renders the fault as "code: message".
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// HTTPStatus maps the error code to its fixed HTTP status.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeInvalidRequest, CodeMalformedBody:
		return http.StatusBadRequest
	case CodeUnsupportedMedia:
		return http.StatusUnsupportedMediaType
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeNotFound:
		return http.StatusNotFound
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeUnavailable, CodeReadOnly, CodeFollowerReadOnly:
		return http.StatusServiceUnavailable
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeNotPrimary, CodeWrongShard:
		return http.StatusMisdirectedRequest
	case CodeStaleSeq:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// Errorf builds an Error from a format string.
func Errorf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// envelope is the non-2xx response body.
type envelope struct {
	Error *Error `json:"error"`
}

// ---------------------------------------------------------------------------
// Unary request/response types
// ---------------------------------------------------------------------------

// Sample is one labeled feature record in a TrainRequest.
type Sample struct {
	Label    int       `json:"label"`
	Features []float64 `json:"features"`
}

// TrainRequest is one write batch: labeled samples to train on plus item
// symbols to intern, applied atomically as one snapshot publication.
type TrainRequest struct {
	Samples []Sample `json:"samples,omitempty"`
	Symbols []string `json:"symbols,omitempty"`
}

// TrainResponse acknowledges an applied write batch.
type TrainResponse struct {
	Version uint64 `json:"version"`
	Trained int    `json:"trained"`
	Samples uint64 `json:"samples"`
	Items   int    `json:"items"`
}

// PredictRequest classifies a batch of feature records against one
// consistent snapshot.
type PredictRequest struct {
	Queries [][]float64 `json:"queries"`
}

// PredictResponse carries one class and normalized distance per query, in
// request order, plus the snapshot version that served them all.
type PredictResponse struct {
	Version   uint64    `json:"version"`
	Classes   []int     `json:"classes"`
	Distances []float64 `json:"distances"`
}

// ScoresRequest asks for each query's raw Hamming distance to every class
// prototype, all against one consistent snapshot. This is the scatter half
// of cross-process scatter-gather predict: a cluster client fans the same
// queries to every shard, keeps each shard's owned-class distances, and
// merges with the exact integer tie-break — bit-identical to an unsharded
// Predict. (Predict's float64 distance cannot be merged exactly; integers
// can.)
type ScoresRequest struct {
	Queries [][]float64 `json:"queries"`
}

// ScoresResponse carries one distance row per query, in request order.
// Distances[i][c] is query i's raw Hamming distance to the prototype of
// global class c. Classes a shard does not own still appear (their
// prototypes are untrained tie vectors); callers must select by ownership.
type ScoresResponse struct {
	Version   uint64  `json:"version"`
	Dim       int     `json:"dim"`
	Classes   int     `json:"classes"`
	Distances [][]int `json:"distances"`
}

// ClusterShard is one shard group's endpoint set in a ClusterResponse.
type ClusterShard struct {
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// ClusterResponse is the GET /v1/cluster body: the manifest this node was
// booted with, so clients self-configure from any single endpoint and
// refresh on topology change (adopting a manifest only when its version is
// newer). Shard is the index this node serves. The route answers 404 on a
// node running outside any cluster.
type ClusterResponse struct {
	ManifestVersion uint64         `json:"manifest_version"`
	RingPositions   int            `json:"ring_positions"`
	RingDim         int            `json:"ring_dim"`
	RingSeed        uint64         `json:"ring_seed"`
	Shards          []ClusterShard `json:"shards"`
	Shard           int            `json:"shard"`
}

// PromoteResponse acknowledges POST /v1/admin/promote: the node's role
// after the call ("primary"; promotion is idempotent) and the version its
// model stands at. The route exists only when the operator opted in
// (Config.EnableAdmin / hdcserve -admin) and answers 404 otherwise.
type PromoteResponse struct {
	Role    string `json:"role"`
	Version uint64 `json:"version"`
}

// LookupRequest is the POST /v1/lookup body: nearest-symbol cleanup of one
// encoded feature record.
type LookupRequest struct {
	Features []float64 `json:"features"`
}

// LookupResponse answers all three lookup surfaces; which fields are set
// depends on the question asked (key routing, symbol membership, cleanup).
type LookupResponse struct {
	// Key-routing fields (GET ?key=).
	Key    string `json:"key,omitempty"`
	Shard  *int   `json:"shard,omitempty"`
	Member string `json:"member,omitempty"`
	Slot   *int   `json:"slot,omitempty"`
	// Cleanup fields (POST features / GET ?symbol=).
	Symbol     string  `json:"symbol,omitempty"`
	Similarity float64 `json:"similarity,omitempty"`
	Found      *bool   `json:"found,omitempty"`
	Version    uint64  `json:"version"`
}

// HealthResponse is the GET /v1/healthz body. Status is "ok" on a healthy
// server, "degraded" when a storage fault stopped the write plane (reads
// keep serving; Reason and DegradedSince say why and since when), and
// "closed" after shutdown began. The route answers 200 regardless — a
// degraded node is a HEALTHY read replica — unless the probe asks about
// the write plane (?plane=write), which answers 503 for anything but "ok"
// so write-routing load balancers drain the node.
type HealthResponse struct {
	Status        string    `json:"status"`
	Version       uint64    `json:"version"`
	Reason        string    `json:"reason,omitempty"`
	DegradedSince time.Time `json:"degraded_since,omitzero"`
}

// ---------------------------------------------------------------------------
// Streaming row types
// ---------------------------------------------------------------------------

// IngestRow is one NDJSON line of POST /v1/ingest:stream: either a labeled
// training sample (Label + Features) or an item symbol to intern (Symbol).
// A row carrying both trains and interns in the same coalesced batch.
type IngestRow struct {
	Label    *int      `json:"label,omitempty"`
	Features []float64 `json:"features,omitempty"`
	Symbol   string    `json:"symbol,omitempty"`
}

// IngestAck is one NDJSON line of the ingest response: an acknowledgment
// per applied batch (Version, Rows), then a final summary line with Done
// set (TotalRows, Batches). A mid-stream fault sets Error on the last line
// instead; rows not covered by an earlier ack were not applied.
type IngestAck struct {
	Version   uint64 `json:"version,omitempty"`
	Rows      int    `json:"rows,omitempty"`
	Done      bool   `json:"done,omitempty"`
	TotalRows int    `json:"total_rows,omitempty"`
	Batches   int    `json:"batches,omitempty"`
	Error     *Error `json:"error,omitempty"`
}

// PredictRow is one NDJSON line of POST /v1/predict:stream.
type PredictRow struct {
	Features []float64 `json:"features"`
}

// PredictResult is one NDJSON line of the predict-stream response: exactly
// one per input row, in input order. A mid-stream fault terminates the
// stream with a line whose Error field is set.
type PredictResult struct {
	Class    int     `json:"class"`
	Distance float64 `json:"distance"`
	Version  uint64  `json:"version"`
	Error    *Error  `json:"error,omitempty"`
}

// ---------------------------------------------------------------------------
// Replication wire contract (POST /v1/replicate:stream)
// ---------------------------------------------------------------------------

// ReplicateRequest is the first NDJSON line of the replicate-stream
// request body: the follower announces where its applied history ends.
// FromSeq is the first sequence it needs (applied version + 1; 0 and 1
// both mean "from the beginning"). The primary answers with a catch-up
// plan it chooses: a log suffix when FromSeq is still retained, or an
// in-band checkpoint seed first when compaction has passed it.
type ReplicateRequest struct {
	FromSeq uint64 `json:"from_seq"`
}

// ReplicateAck is every subsequent NDJSON line of the request body (the
// stream is duplex): the follower's durable-apply progress, used by the
// primary for lag accounting and surfaced in Stats.
type ReplicateAck struct {
	AckedSeq uint64 `json:"acked_seq"`
}

// ReplicateFrame is one NDJSON line of the replicate-stream response.
// Exactly one of the three frame kinds is set:
//
//   - record: Seq > 0. Payload is the verbatim WAL record (base64 in
//     JSON), CRC echoes the on-disk record checksum
//     (wal.RecordCRC(seq, payload)) so the follower verifies the exact
//     bytes end to end before applying.
//   - checkpoint seed: Checkpoint non-empty — a whole checkpoint image
//     (the HCKP file format) at CheckpointVersion. The follower installs
//     it and the stream continues at CheckpointVersion+1.
//   - heartbeat: Heartbeat true. Keeps the connection verified live while
//     the primary is idle and carries the head position for lag tracking.
//
// Every frame kind carries HeadSeq, the primary's newest appended
// sequence, so follower lag (HeadSeq − applied version) is continuously
// observable. A terminal fault is a frame whose Error is set, after which
// the primary closes the stream.
type ReplicateFrame struct {
	Seq     uint64 `json:"seq,omitempty"`
	Payload []byte `json:"payload,omitempty"`
	CRC     uint32 `json:"crc,omitempty"`

	Checkpoint        []byte `json:"checkpoint,omitempty"`
	CheckpointVersion uint64 `json:"checkpoint_version,omitempty"`

	Heartbeat bool `json:"heartbeat,omitempty"`

	HeadSeq uint64 `json:"head_seq,omitempty"`
	Error   *Error `json:"error,omitempty"`
}

// ReplicationStream is one follower's live shipping session, produced by
// a ReplicationSource. Next blocks until the next frame is due (record,
// checkpoint seed, or heartbeat) and is called from a single goroutine;
// Ack may be called concurrently from the request-body reader. Close
// releases the session (idempotent).
type ReplicationStream interface {
	Next(ctx context.Context) (ReplicateFrame, error)
	Ack(seq uint64)
	Close() error
}

// ReplicationSource is the primary-side shipper behind the replicate
// endpoint — implemented by internal/repl.Source and injected through
// Config.Replication, so the wire layer never depends on the replication
// engine. Stream validates the follower's request and opens a session;
// a request the source cannot serve returns an *Error (e.g.
// CodeStaleSeq).
type ReplicationSource interface {
	Stream(ctx context.Context, req ReplicateRequest) (ReplicationStream, error)
}
