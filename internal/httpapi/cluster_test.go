package httpapi

import (
	"context"
	"net/http"
	"testing"
	"time"

	"hdcirc/internal/cluster"
	"hdcirc/internal/serve"
)

// testNode builds the 2-shard routing fixture (ring seed 42, default
// geometry) scoped to one shard. Under these goldens shard 0 owns classes
// {1, 2} and items alpha..delta; shard 1 owns class {0} and item echo.
func testNode(t *testing.T, shard int) *cluster.Node {
	t.Helper()
	m := &cluster.Manifest{
		RingSeed: 42,
		Shards: []cluster.ShardEndpoints{
			{Primary: "http://s0-primary", Replicas: []string{"http://s0-replica"}},
			{Primary: "http://s1-primary", Replicas: []string{"http://s1-replica"}},
		},
	}
	n, err := cluster.NewNode(m, shard)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTrainWrongShard(t *testing.T) {
	a := testAPI(t, func(c *Config) { c.Cluster = testNode(t, 0) })

	// Label 0 belongs to shard 1: the whole batch is refused before any of
	// it applies, with the owner's endpoints in the envelope.
	rec, out := doJSON(t, a, http.MethodPost, "/v1/train", TrainRequest{
		Samples: []Sample{
			{Label: 1, Features: []float64{0.2, 0.2}},
			{Label: 0, Features: []float64{0.1, 0.1}},
		},
	})
	if rec.Code != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted train = %d: %s", rec.Code, rec.Body.String())
	}
	env := out["error"].(map[string]any)
	if env["code"].(string) != string(CodeWrongShard) {
		t.Fatalf("code = %v, want wrong_shard", env["code"])
	}
	if env["owner_shard"].(float64) != 1 || env["owner_primary_url"].(string) != "http://s1-primary" {
		t.Fatalf("owner hint missing: %v", env)
	}
	if reps := env["owner_replica_urls"].([]any); len(reps) != 1 || reps[0].(string) != "http://s1-replica" {
		t.Fatalf("owner replicas: %v", env)
	}
	if v := a.Server().Snapshot().Version(); v != 0 {
		t.Fatalf("misrouted batch advanced the model to version %d", v)
	}

	// A misrouted symbol is refused the same way.
	rec, out = doJSON(t, a, http.MethodPost, "/v1/train", TrainRequest{Symbols: []string{"echo"}})
	if rec.Code != http.StatusMisdirectedRequest || errCode(t, out) != string(CodeWrongShard) {
		t.Fatalf("misrouted symbol = %d %v", rec.Code, out)
	}

	// Owned keys apply normally on the same node.
	rec, out = doJSON(t, a, http.MethodPost, "/v1/train", TrainRequest{
		Samples: []Sample{{Label: 1, Features: []float64{0.9, 0.1}}},
		Symbols: []string{"alpha"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("owned train = %d: %s", rec.Code, rec.Body.String())
	}
	if out["version"].(float64) != 1 {
		t.Fatalf("owned train response: %v", out)
	}
}

func TestIngestStreamWrongShard(t *testing.T) {
	a := testAPI(t, func(c *Config) {
		c.Cluster = testNode(t, 0)
		c.StreamBatch = 2
	})

	// Two owned rows (one full batch, acked) then a foreign row: the
	// stream must carry the ack for the applied batch, then terminate with
	// a wrong_shard error line, applying nothing else.
	body := `{"label":1,"features":[0.9,0.1]}
{"label":2,"features":[0.5,0.9]}
{"label":0,"features":[0.1,0.1]}
`
	_, lines := postStream(t, a, "/v1/ingest:stream", body)
	if len(lines) != 2 {
		t.Fatalf("stream lines = %d (%v), want ack + error", len(lines), lines)
	}
	if lines[0]["version"].(float64) != 1 || lines[0]["rows"].(float64) != 2 {
		t.Fatalf("ack line: %v", lines[0])
	}
	env := lines[1]["error"].(map[string]any)
	if env["code"].(string) != string(CodeWrongShard) || env["owner_shard"].(float64) != 1 {
		t.Fatalf("terminal line: %v", lines[1])
	}
	if v := a.Server().Snapshot().Version(); v != 1 {
		t.Fatalf("model at version %d, want exactly the acked batch", v)
	}
}

func TestClusterRoute(t *testing.T) {
	plain := testAPI(t)
	rec, out := doJSON(t, plain, http.MethodGet, "/v1/cluster", nil)
	if rec.Code != http.StatusNotFound || errCode(t, out) != string(CodeNotFound) {
		t.Fatalf("unsharded /v1/cluster = %d %v", rec.Code, out)
	}

	a := testAPI(t, func(c *Config) { c.Cluster = testNode(t, 1) })
	rec, out = doJSON(t, a, http.MethodGet, "/v1/cluster", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/cluster = %d: %s", rec.Code, rec.Body.String())
	}
	if out["shard"].(float64) != 1 || out["ring_seed"].(float64) != 42 ||
		out["ring_positions"].(float64) != 8 || out["ring_dim"].(float64) != float64(cluster.DefaultRingDim) {
		t.Fatalf("cluster response: %v", out)
	}
	shards := out["shards"].([]any)
	if len(shards) != 2 || shards[0].(map[string]any)["primary"].(string) != "http://s0-primary" {
		t.Fatalf("cluster shards: %v", shards)
	}
}

// TestScoresMatchesSnapshot pins the scatter endpoint to the snapshot's
// raw distances: same queries, same integers, plus the version/dim/class
// header the merge needs.
func TestScoresMatchesSnapshot(t *testing.T) {
	a := testAPI(t)
	if rec, _ := doJSON(t, a, http.MethodPost, "/v1/train", trainBody(10)); rec.Code != http.StatusOK {
		t.Fatalf("train = %d", rec.Code)
	}

	queries := [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}}
	rec, out := doJSON(t, a, http.MethodPost, "/v1/scores", ScoresRequest{Queries: queries})
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/scores = %d: %s", rec.Code, rec.Body.String())
	}
	snap := a.Server().Snapshot()
	if out["version"].(float64) != float64(snap.Version()) ||
		out["dim"].(float64) != float64(snap.Dim()) ||
		out["classes"].(float64) != float64(snap.Classes()) {
		t.Fatalf("scores header: %v", out)
	}
	enc := a.cfg.Encoder
	rows := out["distances"].([]any)
	if len(rows) != len(queries) {
		t.Fatalf("distance rows = %d, want %d", len(rows), len(queries))
	}
	for i, q := range queries {
		want := snap.RawScores(enc.Encode(q))
		got := rows[i].([]any)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d classes, want %d", i, len(got), len(want))
		}
		for c := range want {
			if int(got[c].(float64)) != want[c] {
				t.Fatalf("query %d class %d: distance %v, want %d", i, c, got[c], want[c])
			}
		}
	}

	rec, out = doJSON(t, a, http.MethodPost, "/v1/scores", ScoresRequest{})
	if rec.Code != http.StatusBadRequest || errCode(t, out) != string(CodeInvalidRequest) {
		t.Fatalf("empty scores = %d %v", rec.Code, out)
	}
}

func TestAdminPromote(t *testing.T) {
	// Disabled by default: the route does not exist.
	a := testAPI(t)
	rec, out := doJSON(t, a, http.MethodPost, "/v1/admin/promote", nil)
	if rec.Code != http.StatusNotFound || errCode(t, out) != string(CodeNotFound) {
		t.Fatalf("promote without -admin = %d %v", rec.Code, out)
	}

	// Enabled: a follower flips to primary; the hook, when set, is what
	// runs (hdcserve points it at the replication follower's Promote).
	hookCalls := 0
	a = testAPI(t, func(c *Config) {
		c.EnableAdmin = true
		c.PromoteFunc = func() error {
			hookCalls++
			return c.Server.Promote()
		}
	})
	if err := a.Server().BecomeFollower("http://old-primary"); err != nil {
		t.Fatal(err)
	}
	rec, out = doJSON(t, a, http.MethodPost, "/v1/admin/promote", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("promote = %d: %s", rec.Code, rec.Body.String())
	}
	if out["role"].(string) != "primary" || hookCalls != 1 {
		t.Fatalf("promote response %v, hook calls %d", out, hookCalls)
	}
	if a.Server().Role() != serve.RolePrimary {
		t.Fatal("server still a follower after promote")
	}

	// Writes work immediately after promotion.
	if rec, _ := doJSON(t, a, http.MethodPost, "/v1/train", trainBody(2)); rec.Code != http.StatusOK {
		t.Fatalf("train after promote = %d", rec.Code)
	}
}

// TestReplicaAdmissionProfile: a follower sheds through its own gate while
// the primary profile stays untouched, and promotion retires the replica
// profile immediately.
func TestReplicaAdmissionProfile(t *testing.T) {
	a := testAPI(t, func(c *Config) {
		c.ReplicaMaxInFlight = 1
		c.ReplicaMaxQueue = 1
		c.RetryAfter = 50 * time.Millisecond
	})
	if a.rgate == nil {
		t.Fatal("replica gate not built")
	}
	if err := a.Server().BecomeFollower("http://primary"); err != nil {
		t.Fatal(err)
	}

	// Saturate the replica profile: take its only slot and its only queue
	// position out from under the handler.
	if e := a.rgate.acquire(context.Background()); e != nil {
		t.Fatalf("draining replica slot: %v", e)
	}
	a.rgate.queued.Add(1)

	rec, out := doJSON(t, a, http.MethodPost, "/v1/predict", PredictRequest{Queries: [][]float64{{0.5, 0.5}}})
	if rec.Code != http.StatusTooManyRequests || errCode(t, out) != string(CodeOverloaded) {
		t.Fatalf("saturated replica read = %d %v, want structured 429", rec.Code, out)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After hint")
	}
	if got := a.gate.rejected.Load(); got != 0 {
		t.Fatalf("primary gate counted %d rejections, want 0", got)
	}
	if got := a.rgate.rejected.Load(); got != 1 {
		t.Fatalf("replica gate counted %d rejections, want 1", got)
	}

	// Stats reports the union.
	rec, out = doJSON(t, a, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK || out["http_rejected"].(float64) != 1 {
		t.Fatalf("stats = %d %v", rec.Code, out["http_rejected"])
	}

	// Promote: the same request now rides the (idle) primary gate.
	if err := a.Server().Promote(); err != nil {
		t.Fatal(err)
	}
	rec, _ = doJSON(t, a, http.MethodPost, "/v1/predict", PredictRequest{Queries: [][]float64{{0.5, 0.5}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-promote read = %d, want the primary profile to serve it", rec.Code)
	}
}
