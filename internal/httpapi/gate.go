package httpapi

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// gate is the admission controller: at most inflight requests execute at
// once, at most queued more wait for a slot, and everything beyond that is
// rejected immediately with a structured 429 — the server sheds load
// instead of queuing without bound. Stats/healthz bypass the gate so an
// overloaded server stays observable.
type gate struct {
	slots      chan struct{} // in-flight capacity
	queued     atomic.Int64  // waiters currently blocked on slots
	maxQueue   int64
	retryAfter time.Duration
	rejected   atomic.Uint64 // total admissions refused (observability)
}

func newGate(inflight, queue int, retryAfter time.Duration) *gate {
	g := &gate{
		slots:      make(chan struct{}, inflight),
		maxQueue:   int64(queue),
		retryAfter: retryAfter,
	}
	for i := 0; i < inflight; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// acquire admits the request or rejects it. On admission it returns a nil
// error and the caller MUST call release. Rejection returns the
// CodeOverloaded envelope error (with the retry hint) when capacity and
// queue are exhausted, or the request context's cancellation mapped to
// CodeUnavailable when the client gave up while queued.
func (g *gate) acquire(ctx context.Context) *Error {
	select {
	case <-g.slots:
		return nil
	default:
	}
	// Full: try to take a queue position. The counter may transiently
	// overshoot under contention; the compare-then-add window is benign —
	// a handful of extra waiters, never unbounded growth.
	if g.queued.Load() >= g.maxQueue {
		g.rejected.Add(1)
		e := Errorf(CodeOverloaded, "server at capacity: %d in flight, %d queued", cap(g.slots), g.maxQueue)
		e.RetryAfterMS = g.retryAfter.Milliseconds()
		return e
	}
	g.queued.Add(1)
	defer g.queued.Add(-1)
	select {
	case <-g.slots:
		return nil
	case <-ctx.Done():
		g.rejected.Add(1)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return Errorf(CodeDeadlineExceeded, "deadline expired while queued for admission")
		}
		return Errorf(CodeUnavailable, "request canceled while queued: %v", ctx.Err())
	}
}

func (g *gate) release() { g.slots <- struct{}{} }
