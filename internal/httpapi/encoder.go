package httpapi

import (
	"fmt"

	"hdcirc/internal/batch"
	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/embed"
	"hdcirc/internal/rng"
)

// Encoder maps feature records to hypervectors for the handler. Encode is
// called from any number of request goroutines concurrently, so
// implementations must be stateless per call (the repo's record, scalar
// and circular encoders all are: fixed keys, fixed tie vectors).
type Encoder interface {
	// Fields returns the record arity every request must match.
	Fields() int
	// Encode maps one validated record (length Fields, no NaN — the
	// handler checks both) to its hypervector.
	Encode(features []float64) *bitvec.Vector
}

// scalarRecordEncoder is the standard serving encoder: each field is
// level-encoded over [lo, hi] and bound to its field key — the paper's
// record encoding ⊕ᵢ Kᵢ ⊗ Vᵢ, the same stack cmd/hdcserve has always
// served.
type scalarRecordEncoder struct {
	rec *embed.RecordEncoder
	enc []embed.FieldEncoder
}

func (e *scalarRecordEncoder) Fields() int { return e.rec.NumFields() }

func (e *scalarRecordEncoder) Encode(features []float64) *bitvec.Vector {
	return e.rec.EncodeRecord(features, e.enc)
}

// ScalarRecordConfig sizes NewScalarRecordEncoder.
type ScalarRecordConfig struct {
	Dim    int     // hypervector dimension (must match the server's)
	Fields int     // features per record
	Lo, Hi float64 // feature interval
	Levels int     // quantization levels per feature
	Seed   uint64  // master seed (must match the server's for determinism)
}

// NewScalarRecordEncoder builds the standard record-encoding stack over a
// level basis: the encoder hdcserve serves and the one embedding callers
// almost always want. Two encoders built from equal configs are
// bit-identical.
func NewScalarRecordEncoder(cfg ScalarRecordConfig) (Encoder, error) {
	if cfg.Fields <= 0 {
		return nil, fmt.Errorf("httpapi: need at least one record field, got %d", cfg.Fields)
	}
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("httpapi: need at least one quantization level, got %d", cfg.Levels)
	}
	if cfg.Hi <= cfg.Lo {
		return nil, fmt.Errorf("httpapi: empty feature interval [%v,%v]", cfg.Lo, cfg.Hi)
	}
	basis := core.Config{Kind: core.KindLevel, M: cfg.Levels, D: cfg.Dim}.
		Build(rng.Sub(cfg.Seed, "hdcserve/levels"))
	scalar := embed.NewScalarEncoder(basis, cfg.Lo, cfg.Hi)
	enc := make([]embed.FieldEncoder, cfg.Fields)
	for i := range enc {
		enc[i] = scalar
	}
	return &scalarRecordEncoder{
		rec: embed.NewRecordEncoder(cfg.Dim, cfg.Fields, cfg.Seed),
		enc: enc,
	}, nil
}

// validateRecord checks one feature record's shape before encoding: arity
// and NaN (the scalar encoder would panic on NaN).
func validateRecord(enc Encoder, features []float64) *Error {
	if want := enc.Fields(); len(features) != want {
		return Errorf(CodeInvalidRequest, "record has %d features, server expects %d", len(features), want)
	}
	for i, f := range features {
		if f != f {
			return Errorf(CodeInvalidRequest, "feature %d is NaN", i)
		}
	}
	return nil
}

// encodeRecords validates and encodes a batch of records across the pool.
func encodeRecords(enc Encoder, pool *batch.Pool, records [][]float64) ([]*bitvec.Vector, *Error) {
	for i, rec := range records {
		if err := validateRecord(enc, rec); err != nil {
			return nil, Errorf(err.Code, "record %d: %s", i, err.Message)
		}
	}
	return batch.Map(pool, records, enc.Encode), nil
}
