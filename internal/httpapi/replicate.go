package httpapi

// The primary half of WAL shipping: POST /v1/replicate:stream. The
// endpoint is a thin NDJSON adapter over Config.Replication — the
// follower's first body line is a ReplicateRequest, every later line a
// ReplicateAck (the stream is duplex, like ingest), and the response is a
// sequence of ReplicateFrame lines the source produces: catch-up records,
// an in-band checkpoint seed when the log is compacted past the
// follower's position, live-tail records, and heartbeats while idle.
//
// Like /v1/snapshot, the route is deliberately ungated: replication is
// tier infrastructure that must keep flowing while client traffic has the
// admission gate saturated — a starved follower turns into an unbounded
// lag problem that is strictly worse than one more open connection.

import (
	"errors"
	"net/http"

	"hdcirc/internal/serve"
)

func (a *API) handleReplicateStream(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if e := checkContentType(r, "application/x-ndjson", "application/json"); e != nil {
		writeError(w, e)
		return
	}
	src := a.replication()
	if src == nil {
		// Followers cannot ship (no cascading); redirect the lost
		// follower to the primary when this node knows it.
		if a.cfg.Server.Role() == serve.RoleFollower {
			writeError(w, a.notPrimaryError())
			return
		}
		writeError(w, Errorf(CodeUnavailable, "replication is not enabled on this node"))
		return
	}

	rd := newRowDecoder(r.Body, a.cfg.MaxRowBytes)
	var req ReplicateRequest
	ok, e := rd.next(&req)
	if e != nil {
		writeError(w, e)
		return
	}
	if !ok {
		writeError(w, Errorf(CodeMalformedBody, "missing ReplicateRequest line"))
		return
	}
	stream, err := src.Stream(r.Context(), req)
	if err != nil {
		writeError(w, asWireError(err))
		return
	}
	defer stream.Close()

	// The request body stays open for the stream's lifetime; every line
	// after the first is the follower's progress. The reader exits when
	// the follower stops sending or the handler returns (the server
	// closes the body, failing the read).
	go func() {
		for {
			var ack ReplicateAck
			ok, e := rd.next(&ack)
			if !ok || e != nil {
				return
			}
			stream.Ack(ack.AckedSeq)
		}
	}()

	sw := newStreamWriter(w)
	for {
		frame, err := stream.Next(r.Context())
		if err != nil {
			if r.Context().Err() != nil {
				return // follower went away; nothing to tell it
			}
			sw.line(ReplicateFrame{Error: asWireError(err)})
			sw.flush()
			return
		}
		if err := sw.line(frame); err != nil {
			return
		}
		// Flushed per frame: a record must reach the follower when it is
		// appended, not when a buffer fills — replication lag is the SLO
		// here, not bulk throughput.
		sw.flush()
		if frame.Error != nil {
			return
		}
	}
}

// asWireError surfaces a source error as a structured protocol error,
// passing typed *Error values through and wrapping anything else as
// internal.
func asWireError(err error) *Error {
	var we *Error
	if errors.As(err, &we) {
		return we
	}
	return Errorf(CodeInternal, "%v", err)
}
