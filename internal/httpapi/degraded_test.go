package httpapi

// Wire-level behavior of a degraded server: healthz reports it (200 for
// the read plane, 503 for ?plane=write), writes come back as read_only
// with a Retry-After hint, reads keep working, and the deadline knobs map
// expirations to deadline_exceeded.

import (
	"net/http"
	"testing"
	"time"

	"hdcirc/internal/serve"
	"hdcirc/internal/vfs"
)

// faultedAPI is testAPI over a durable server whose disk can be made to
// fail on demand.
func faultedAPI(t *testing.T, mutate ...func(*Config)) (*API, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFaultFS(nil)
	srv, err := serve.Open(serve.Config{
		Dim: 1024, Classes: 3, Shards: 2, Workers: 2, Seed: 7,
		WAL: &serve.WALConfig{Dir: t.TempDir(), FS: ffs},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	enc, err := NewScalarRecordEncoder(ScalarRecordConfig{Dim: 1024, Fields: 2, Lo: 0, Hi: 1, Levels: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Server: srv, Encoder: enc, RetryAfter: 700 * time.Millisecond}
	for _, m := range mutate {
		m(&cfg)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, ffs
}

func TestDegradedWireBehavior(t *testing.T) {
	a, ffs := faultedAPI(t)

	// Healthy: a write lands, healthz says ok on both planes.
	rec, _ := doJSON(t, a, http.MethodPost, "/v1/train", trainBody(4))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy train: %d %s", rec.Code, rec.Body.String())
	}
	rec, out := doJSON(t, a, http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthy healthz: %d %v", rec.Code, out)
	}
	rec, _ = doJSON(t, a, http.MethodGet, "/v1/healthz?plane=write", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy write-plane healthz: %d", rec.Code)
	}

	// The disk dies under the next append.
	ffs.Arm(vfs.Fault{Op: vfs.OpWrite, Path: ".seg", Err: vfs.ErrNoSpace})
	rec, out = doJSON(t, a, http.MethodPost, "/v1/train", trainBody(2))
	if rec.Code != http.StatusServiceUnavailable || errCode(t, out) != string(CodeReadOnly) {
		t.Fatalf("train over full disk: %d %v, want 503 read_only", rec.Code, out)
	}
	env := out["error"].(map[string]any)
	if env["retry_after_ms"].(float64) != 700 {
		t.Fatalf("retry_after_ms = %v, want 700", env["retry_after_ms"])
	}
	if rec.Header().Get("Retry-After") != "1" { // 700ms rounds up to 1s
		t.Fatalf("Retry-After header = %q, want 1", rec.Header().Get("Retry-After"))
	}

	// Healthz: 200 + degraded for the read plane, 503 for the write plane.
	rec, out = doJSON(t, a, http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusOK || out["status"] != "degraded" {
		t.Fatalf("degraded healthz: %d %v", rec.Code, out)
	}
	if out["reason"] == "" || out["degraded_since"] == nil {
		t.Fatalf("degraded healthz missing reason/since: %v", out)
	}
	rec, out = doJSON(t, a, http.MethodGet, "/v1/healthz?plane=write", nil)
	if rec.Code != http.StatusServiceUnavailable || out["status"] != "degraded" {
		t.Fatalf("degraded write-plane healthz: %d %v, want 503 degraded", rec.Code, out)
	}

	// Reads keep serving: predict, stats (which now reports the state), and
	// the snapshot download all answer 200.
	rec, _ = doJSON(t, a, http.MethodPost, "/v1/predict", PredictRequest{Queries: [][]float64{{0.2, 0.8}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("predict while degraded: %d %s", rec.Code, rec.Body.String())
	}
	rec, out = doJSON(t, a, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK || out["degraded"] != true {
		t.Fatalf("stats while degraded: %d %v", rec.Code, out)
	}
	rec, _ = doJSON(t, a, http.MethodGet, "/v1/snapshot", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot while degraded: %d", rec.Code)
	}

	// Repeat writes stay read_only (sticky), not a one-shot.
	rec, out = doJSON(t, a, http.MethodPost, "/v1/train", trainBody(1))
	if rec.Code != http.StatusServiceUnavailable || errCode(t, out) != string(CodeReadOnly) {
		t.Fatalf("second degraded train: %d %v", rec.Code, out)
	}

	// Disk healed, operator recovers: writes flow again, healthz is ok.
	ffs.Clear()
	if err := a.Server().Recover(); err != nil {
		t.Fatal(err)
	}
	rec, _ = doJSON(t, a, http.MethodPost, "/v1/train", trainBody(3))
	if rec.Code != http.StatusOK {
		t.Fatalf("train after recover: %d %s", rec.Code, rec.Body.String())
	}
	rec, out = doJSON(t, a, http.MethodGet, "/v1/healthz?plane=write", nil)
	if rec.Code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz after recover: %d %v", rec.Code, out)
	}
}

func TestIngestStreamDegradedMapsToReadOnly(t *testing.T) {
	a, ffs := faultedAPI(t)
	ffs.Arm(vfs.Fault{Op: vfs.OpWrite, Path: ".seg", Err: vfs.ErrNoSpace})

	body := `{"label":1,"features":[0.3,0.4]}` + "\n"
	rec, lines := postStream(t, a, "/v1/ingest:stream", body)
	if rec.Code != http.StatusOK { // status was committed before the fault
		t.Fatalf("stream status: %d", rec.Code)
	}
	last := lines[len(lines)-1]
	env, ok := last["error"].(map[string]any)
	if !ok || env["code"] != string(CodeReadOnly) {
		t.Fatalf("terminal stream line %v, want in-band read_only error", last)
	}
}

func TestWriteDeadlineMapsToDeadlineExceeded(t *testing.T) {
	a, _ := faultedAPI(t, func(c *Config) { c.WriteDeadline = time.Nanosecond })
	rec, out := doJSON(t, a, http.MethodPost, "/v1/train", trainBody(1))
	if rec.Code != http.StatusGatewayTimeout || errCode(t, out) != string(CodeDeadlineExceeded) {
		t.Fatalf("train with expired deadline: %d %v, want 504 deadline_exceeded", rec.Code, out)
	}
}

func TestPredictDeadlineMapsToDeadlineExceeded(t *testing.T) {
	a := testAPI(t, func(c *Config) { c.PredictDeadline = time.Nanosecond })
	rec, out := doJSON(t, a, http.MethodPost, "/v1/predict", PredictRequest{Queries: [][]float64{{0.1, 0.2}}})
	if rec.Code != http.StatusGatewayTimeout || errCode(t, out) != string(CodeDeadlineExceeded) {
		t.Fatalf("predict with expired deadline: %d %v, want 504 deadline_exceeded", rec.Code, out)
	}
}
