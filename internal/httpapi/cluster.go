package httpapi

// The wire layer's cluster surface: shard-ownership enforcement on the
// write plane (the wrong_shard protocol error), the manifest self-serve
// route, the raw-scores scatter endpoint, and the opt-in admin promote
// route. Everything here is inert on a node running outside a cluster
// (Config.Cluster nil) except promote, which is gated by its own flag.

import (
	"net/http"

	"hdcirc/internal/cluster"
)

// wrongShardError builds the misrouted-write rejection: the shard-tier
// analogue of notPrimaryError, naming the offending key and carrying the
// owning shard's endpoints so the client reroutes instead of retrying.
func (a *API) wrongShardError(key string, owner int) *Error {
	node := a.cfg.Cluster
	e := Errorf(CodeWrongShard, "key %q belongs to shard %d, this node serves shard %d of %d",
		key, owner, node.Shard, node.NumShards())
	ep := node.Endpoints(owner)
	o := owner
	e.OwnerShard = &o
	e.OwnerPrimaryURL = ep.Primary
	if len(ep.Replicas) > 0 {
		e.OwnerReplicaURLs = append([]string(nil), ep.Replicas...)
	}
	return e
}

// checkSampleOwnership validates one labeled sample's class key against
// this node's shard; nil outside a cluster.
func (a *API) checkSampleOwnership(label int) *Error {
	node := a.cfg.Cluster
	if node == nil {
		return nil
	}
	if owner := node.ShardForClass(label); owner != node.Shard {
		return a.wrongShardError(cluster.ClassKey(label), owner)
	}
	return nil
}

// checkSymbolOwnership validates one item symbol's key the same way.
func (a *API) checkSymbolOwnership(symbol string) *Error {
	node := a.cfg.Cluster
	if node == nil {
		return nil
	}
	if owner := node.ShardForItem(symbol); owner != node.Shard {
		return a.wrongShardError(cluster.ItemKey(symbol), owner)
	}
	return nil
}

// checkBatchOwnership validates a whole unary write batch BEFORE any of
// it is applied, so wrong_shard always means "nothing happened".
func (a *API) checkBatchOwnership(samples []Sample, symbols []string) *Error {
	if a.cfg.Cluster == nil {
		return nil
	}
	for _, s := range samples {
		if e := a.checkSampleOwnership(s.Label); e != nil {
			return e
		}
	}
	for _, sym := range symbols {
		if e := a.checkSymbolOwnership(sym); e != nil {
			return e
		}
	}
	return nil
}

// checkRowOwnership validates one ingest-stream row before it is
// buffered; a misrouted row terminates the stream in band, with every
// earlier acked batch standing and nothing after the last ack applied.
func (a *API) checkRowOwnership(row *IngestRow) *Error {
	if a.cfg.Cluster == nil {
		return nil
	}
	if row.Label != nil {
		if e := a.checkSampleOwnership(*row.Label); e != nil {
			return e
		}
	}
	if row.Symbol != "" {
		if e := a.checkSymbolOwnership(row.Symbol); e != nil {
			return e
		}
	}
	return nil
}

// handleScores is the scatter half of cross-process scatter-gather
// predict: raw per-class integer Hamming distances against one
// consistent snapshot. Integer distances merge exactly across shards
// (the float64 distances Predict returns would not), which is what makes
// a cluster client's merged prediction bit-identical to an unsharded
// model. Served by every node — shard clients fan it out to one endpoint
// per shard group, honoring read preference.
func (a *API) handleScores(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req ScoresRequest
	if e := a.decodeBody(w, r, &req); e != nil {
		writeError(w, e)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, Errorf(CodeInvalidRequest, "no queries"))
		return
	}
	ctx, cancel := a.readCtx(r)
	defer cancel()
	g := a.admission()
	if e := g.acquire(ctx); e != nil {
		writeError(w, e)
		return
	}
	defer g.release()
	if err := ctx.Err(); err != nil {
		writeError(w, Errorf(CodeDeadlineExceeded, "%v", err))
		return
	}
	srv := a.cfg.Server
	hvs, e := encodeRecords(a.cfg.Encoder, srv.Pool(), req.Queries)
	if e != nil {
		writeError(w, e)
		return
	}
	snap := srv.Snapshot()
	dists := make([][]int, len(hvs))
	srv.Pool().ForEach(len(hvs), func(i int) {
		dists[i] = snap.RawScores(hvs[i])
	})
	srv.CountReads(len(hvs))
	writeJSON(w, http.StatusOK, ScoresResponse{
		Version:   snap.Version(),
		Dim:       snap.Dim(),
		Classes:   snap.Classes(),
		Distances: dists,
	})
}

// handleCluster serves the manifest this node was booted with, so any
// single endpoint can bootstrap or refresh a cluster client. 404 outside
// a cluster — the probe a client uses to tell the two worlds apart.
func (a *API) handleCluster(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	node := a.cfg.Cluster
	if node == nil {
		writeError(w, Errorf(CodeNotFound, "this node is not part of a sharded cluster"))
		return
	}
	m := node.Manifest()
	resp := ClusterResponse{
		ManifestVersion: m.Version,
		RingPositions:   m.RingPositions,
		RingDim:         m.RingDim,
		RingSeed:        m.RingSeed,
		Shard:           node.Shard,
	}
	for _, s := range m.Shards {
		resp.Shards = append(resp.Shards, ClusterShard{
			Primary:  s.Primary,
			Replicas: append([]string(nil), s.Replicas...),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePromote flips this node to primary on operator request. Like the
// snapshot route it is deliberately ungated: failover is exactly the
// moment request traffic may have the gate saturated. The route answers
// 404 unless the operator opted in with Config.EnableAdmin, so a node
// not meant to be operated this way cannot be promoted by a stray POST.
func (a *API) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !a.cfg.EnableAdmin {
		writeError(w, Errorf(CodeNotFound, "admin routes are not enabled on this node"))
		return
	}
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	promote := a.cfg.PromoteFunc
	if promote == nil {
		promote = a.cfg.Server.Promote
	}
	if err := promote(); err != nil {
		writeError(w, a.applyError(err))
		return
	}
	writeJSON(w, http.StatusOK, PromoteResponse{
		Role:    a.cfg.Server.Role().String(),
		Version: a.cfg.Server.Snapshot().Version(),
	})
}
