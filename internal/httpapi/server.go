package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"hdcirc/internal/cluster"
	"hdcirc/internal/serve"
)

// Config parameterizes the v1 handler. Server and Encoder are required;
// every other knob's zero value selects the documented default.
type Config struct {
	// Server is the serving core the handler fronts.
	Server *serve.Server
	// Encoder maps feature records to hypervectors; its dimension must
	// match the server's (checked at construction). See
	// NewScalarRecordEncoder for the standard stack.
	Encoder Encoder
	// MaxBodyBytes bounds every unary request body (enforced with
	// http.MaxBytesReader, so decoding stops at the limit rather than
	// buffering an unbounded POST). <= 0 selects 8 MiB.
	MaxBodyBytes int64
	// MaxRowBytes bounds a single NDJSON row on the streaming endpoints,
	// whose overall bodies are intentionally unbounded. <= 0 selects 1 MiB.
	MaxRowBytes int64
	// MaxInFlight bounds concurrently executing model requests (train,
	// predict, cleanup lookups and both streams). <= 0 selects
	// max(16, 4×GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; anything
	// beyond in-flight+queue is rejected with a structured 429 and a
	// Retry-After hint. <= 0 selects 2×MaxInFlight; admission control
	// cannot be disabled, only sized.
	MaxQueue int
	// RetryAfter is the client back-off hint carried on 429s. <= 0 selects
	// 500ms.
	RetryAfter time.Duration
	// StreamBatch is how many NDJSON rows the streaming endpoints coalesce
	// into one ServerBatch / PredictBatch. <= 0 selects 256.
	StreamBatch int
	// WriteDeadline bounds each write batch server-side (unary train, and
	// each coalesced ingest-stream batch): a write still queued behind a
	// slow disk when the deadline expires fails with deadline_exceeded
	// instead of holding the connection. 0 disables the bound.
	WriteDeadline time.Duration
	// PredictDeadline bounds the read plane's queueing the same way
	// (predict, lookup, predict-stream admission). 0 disables the bound.
	PredictDeadline time.Duration
	// Replication, when set, enables the primary side of the replication
	// tier: POST /v1/replicate:stream is served from it (see
	// ReplicationSource; internal/repl.Source is the implementation). Nil
	// answers the route with unavailable — or, on a follower that knows
	// its primary, with a not_primary redirect hint.
	Replication ReplicationSource
	// Cluster, when set, scopes this node to one shard of a sharded tier:
	// writes carrying class/item keys the shard does not own are refused
	// with wrong_shard (and the owner's endpoints as a hint) before any
	// row is applied, and GET /v1/cluster serves the manifest. Nil runs
	// the node unsharded, with /v1/cluster answering 404.
	Cluster *cluster.Node
	// EnableAdmin exposes the operator surface (POST /v1/admin/promote).
	// Off by default: a node not meant to be failed over by hand should
	// not be promotable by a stray POST.
	EnableAdmin bool
	// PromoteFunc overrides what the admin promote route calls — a
	// replica's promotion must stop its replication loop before flipping
	// the role (repl.Follower.Promote), which the wire layer cannot know.
	// Nil selects Server.Promote.
	PromoteFunc func() error
	// ReplicaMaxInFlight and ReplicaMaxQueue size a second admission gate
	// used while the node's role is follower. A replica's capacity profile
	// is nothing like its primary's — it serves only the read plane — so
	// inheriting the primary's write-plane gate either starves replica
	// reads or shields the primary too little. Both zero (the default)
	// keeps the single shared gate; setting either builds the replica gate
	// (the unset one defaulting like its primary counterpart). The gate is
	// chosen per request by current role, so a promote retires the replica
	// profile immediately.
	ReplicaMaxInFlight int
	ReplicaMaxQueue    int
}

func (c *Config) norm() {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxRowBytes <= 0 {
		c.MaxRowBytes = 1 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
		if c.MaxInFlight < 16 {
			c.MaxInFlight = 16
		}
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.StreamBatch <= 0 {
		c.StreamBatch = 256
	}
}

// StatsResponse is the GET /v1/stats body: the serving core's operational
// summary (including the durability fields) plus the wire layer's own
// admission counter.
type StatsResponse struct {
	serve.Stats
	// HTTPRejected counts requests refused by admission control since the
	// handler was built.
	HTTPRejected uint64 `json:"http_rejected,omitempty"`
}

// API is the protocol-v1 http.Handler. Build it with New; it is safe for
// any number of concurrent requests (the serving core is lock-free on
// reads, and the handler adds only the admission gate).
type API struct {
	cfg   Config
	mux   *http.ServeMux
	gate  *gate
	rgate *gate // follower-role admission profile; nil → gate serves both roles

	// The replication source is read per request and swappable at runtime:
	// a follower promoted through the admin route must start hosting
	// /v1/replicate:stream (so the tier's other nodes can re-follow it)
	// without a handler rebuild. Initialized from Config.Replication.
	replMu  sync.RWMutex
	replSrc ReplicationSource
}

// SetReplication installs (or replaces) the primary-side replication
// source serving /v1/replicate:stream. The admin-promote path uses this
// after flipping a follower to primary; passing nil disables the route.
func (a *API) SetReplication(src ReplicationSource) {
	a.replMu.Lock()
	a.replSrc = src
	a.replMu.Unlock()
}

// replication returns the current source (nil when replication is off).
func (a *API) replication() ReplicationSource {
	a.replMu.RLock()
	defer a.replMu.RUnlock()
	return a.replSrc
}

// New validates the config and builds the v1 handler.
func New(cfg Config) (*API, error) {
	if cfg.Server == nil {
		return nil, errors.New("httpapi: Config.Server is required")
	}
	if cfg.Encoder == nil {
		return nil, errors.New("httpapi: Config.Encoder is required")
	}
	if cfg.Encoder.Fields() <= 0 {
		return nil, fmt.Errorf("httpapi: encoder reports %d fields", cfg.Encoder.Fields())
	}
	// Catch a dimension mismatch at construction, not on the first request:
	// encode one zero record and compare against the server.
	if d := cfg.Encoder.Encode(make([]float64, cfg.Encoder.Fields())).Dim(); d != cfg.Server.Config().Dim {
		return nil, fmt.Errorf("httpapi: encoder dimension %d, server %d", d, cfg.Server.Config().Dim)
	}
	cfg.norm()
	a := &API{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		gate:    newGate(cfg.MaxInFlight, cfg.MaxQueue, cfg.RetryAfter),
		replSrc: cfg.Replication,
	}
	if cfg.ReplicaMaxInFlight > 0 || cfg.ReplicaMaxQueue > 0 {
		inflight := cfg.ReplicaMaxInFlight
		if inflight <= 0 {
			inflight = cfg.MaxInFlight
		}
		queue := cfg.ReplicaMaxQueue
		if queue <= 0 {
			queue = 2 * inflight
		}
		a.rgate = newGate(inflight, queue, cfg.RetryAfter)
	}
	a.mux.HandleFunc("/v1/train", a.handleTrain)
	a.mux.HandleFunc("/v1/predict", a.handlePredict)
	a.mux.HandleFunc("/v1/scores", a.handleScores)
	a.mux.HandleFunc("/v1/lookup", a.handleLookup)
	a.mux.HandleFunc("/v1/stats", a.handleStats)
	a.mux.HandleFunc("/v1/cluster", a.handleCluster)
	a.mux.HandleFunc("/v1/snapshot", a.handleSnapshot)
	a.mux.HandleFunc("/v1/healthz", a.handleHealthz)
	a.mux.HandleFunc("/v1/predict:stream", a.handlePredictStream)
	a.mux.HandleFunc("/v1/ingest:stream", a.handleIngestStream)
	a.mux.HandleFunc("/v1/replicate:stream", a.handleReplicateStream)
	a.mux.HandleFunc("/v1/admin/promote", a.handlePromote)
	a.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, Errorf(CodeNotFound, "no route %s %s in protocol v1", r.Method, r.URL.Path))
	})
	return a, nil
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// Server returns the serving core the handler fronts (for embedding
// binaries that need lifecycle calls like Close and Checkpoint).
func (a *API) Server() *serve.Server { return a.cfg.Server }

// admission picks the gate for the node's current role: the replica
// profile while a follower (when one was configured), the primary gate
// otherwise. Role is read per request, so promotion switches profiles
// without a rebuild.
func (a *API) admission() *gate {
	if a.rgate != nil && a.cfg.Server.Role() == serve.RoleFollower {
		return a.rgate
	}
	return a.gate
}

// ---------------------------------------------------------------------------
// Envelope plumbing
// ---------------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, e *Error) {
	if e.RetryAfterMS > 0 {
		secs := (e.RetryAfterMS + 999) / 1000 // Retry-After is whole seconds; round up
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, e.HTTPStatus(), envelope{Error: e})
}

// requireMethod enforces the route's method set with a structured 405.
func requireMethod(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", allowHeader(methods))
	writeError(w, Errorf(CodeMethodNotAllowed, "%s does not allow %s", r.URL.Path, r.Method))
	return false
}

func allowHeader(methods []string) string {
	out := ""
	for i, m := range methods {
		if i > 0 {
			out += ", "
		}
		out += m
	}
	return out
}

// checkContentType enforces the request media type; an absent Content-Type
// is accepted (curl-friendliness), anything explicit must match one of the
// allowed types.
func checkContentType(r *http.Request, allowed ...string) *Error {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return Errorf(CodeUnsupportedMedia, "unparseable Content-Type %q", ct)
	}
	for _, want := range allowed {
		if mt == want {
			return nil
		}
	}
	return Errorf(CodeUnsupportedMedia, "Content-Type %q not accepted here (want %s)", mt, allowHeader(allowed))
}

// decodeBody decodes one bounded, strict JSON body: Content-Type enforced,
// http.MaxBytesReader capping the read, unknown fields rejected, trailing
// garbage rejected.
func (a *API) decodeBody(w http.ResponseWriter, r *http.Request, dst any) *Error {
	if e := checkContentType(r, "application/json"); e != nil {
		return e
	}
	body := http.MaxBytesReader(w, r.Body, a.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return Errorf(CodeBodyTooLarge, "request body exceeds %d bytes", a.cfg.MaxBodyBytes)
		}
		return Errorf(CodeMalformedBody, "decoding request: %v", err)
	}
	if dec.Decode(&struct{}{}) != io.EOF {
		return Errorf(CodeMalformedBody, "trailing data after JSON body")
	}
	return nil
}

// applyError classifies a serving-core write failure for the wire: a
// degraded server is read_only with a retry hint (the node may
// auto-recover, and reads still work here), a follower is not_primary
// with a redirect hint when it knows its primary (follower_read_only
// with a retry hint when it does not — mid-failover), a closed server is
// unavailable, an expired deadline is deadline_exceeded, and everything
// else the core rejects is the client's batch.
func (a *API) applyError(err error) *Error {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return Errorf(CodeDeadlineExceeded, "%v", err)
	case errors.Is(err, serve.ErrNotPrimary):
		return a.notPrimaryError()
	case errors.Is(err, serve.ErrDegraded):
		e := Errorf(CodeReadOnly, "%v", err)
		e.RetryAfterMS = a.cfg.RetryAfter.Milliseconds()
		return e
	case errors.Is(err, serve.ErrClosed) || errors.Is(err, serve.ErrWALFailed):
		return Errorf(CodeUnavailable, "%v", err)
	default:
		return Errorf(CodeInvalidRequest, "%v", err)
	}
}

// notPrimaryError builds the follower-side write rejection: a redirect
// hint when the primary is known, a retryable follower_read_only when it
// is not (the follower may learn its primary, or be promoted, shortly).
func (a *API) notPrimaryError() *Error {
	if primary := a.cfg.Server.PrimaryURL(); primary != "" {
		e := Errorf(CodeNotPrimary, "this node is a read-only replica of %s", primary)
		e.PrimaryURL = primary
		return e
	}
	e := Errorf(CodeFollowerReadOnly, "this node is a read-only replica (primary unknown)")
	e.RetryAfterMS = a.cfg.RetryAfter.Milliseconds()
	return e
}

// writeCtx bounds a write-plane request by Config.WriteDeadline.
func (a *API) writeCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if a.cfg.WriteDeadline > 0 {
		return context.WithTimeout(r.Context(), a.cfg.WriteDeadline)
	}
	return r.Context(), func() {}
}

// readCtx bounds a read-plane request by Config.PredictDeadline.
func (a *API) readCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if a.cfg.PredictDeadline > 0 {
		return context.WithTimeout(r.Context(), a.cfg.PredictDeadline)
	}
	return r.Context(), func() {}
}

// ---------------------------------------------------------------------------
// Unary handlers
// ---------------------------------------------------------------------------

func (a *API) handleTrain(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	// Decode BEFORE taking an admission slot: the body is hard-bounded by
	// MaxBytesReader, so a slow-trickling client costs one connection, not
	// one of the gate's model-work slots.
	var req TrainRequest
	if e := a.decodeBody(w, r, &req); e != nil {
		writeError(w, e)
		return
	}
	if len(req.Samples) == 0 && len(req.Symbols) == 0 {
		writeError(w, Errorf(CodeInvalidRequest, "empty batch: no samples, no symbols"))
		return
	}
	// Ownership is enforced before admission and before any encoding work:
	// a misrouted batch must cost nothing and apply nothing.
	if e := a.checkBatchOwnership(req.Samples, req.Symbols); e != nil {
		writeError(w, e)
		return
	}
	ctx, cancel := a.writeCtx(r)
	defer cancel()
	g := a.admission()
	if e := g.acquire(ctx); e != nil {
		writeError(w, e)
		return
	}
	defer g.release()
	batch, e := a.buildBatch(req.Samples, req.Symbols)
	if e != nil {
		writeError(w, e)
		return
	}
	snap, err := a.cfg.Server.ApplyBatchContext(ctx, batch)
	if err != nil {
		writeError(w, a.applyError(err))
		return
	}
	writeJSON(w, http.StatusOK, TrainResponse{
		Version: snap.Version(),
		Trained: len(req.Samples),
		Samples: snap.Samples(),
		Items:   snap.NumItems(),
	})
}

// buildBatch encodes labeled samples across the server pool and assembles
// the write batch.
func (a *API) buildBatch(samples []Sample, symbols []string) (serve.Batch, *Error) {
	records := make([][]float64, len(samples))
	for i, s := range samples {
		records[i] = s.Features
	}
	hvs, e := encodeRecords(a.cfg.Encoder, a.cfg.Server.Pool(), records)
	if e != nil {
		return serve.Batch{}, e
	}
	b := serve.Batch{Items: symbols}
	for i, s := range samples {
		b.Train = append(b.Train, serve.Sample{Class: s.Label, HV: hvs[i]})
	}
	return b, nil
}

func (a *API) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req PredictRequest
	if e := a.decodeBody(w, r, &req); e != nil {
		writeError(w, e)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, Errorf(CodeInvalidRequest, "no queries"))
		return
	}
	ctx, cancel := a.readCtx(r)
	defer cancel()
	g := a.admission()
	if e := g.acquire(ctx); e != nil {
		writeError(w, e)
		return
	}
	defer g.release()
	if err := ctx.Err(); err != nil {
		writeError(w, Errorf(CodeDeadlineExceeded, "%v", err))
		return
	}
	hvs, e := encodeRecords(a.cfg.Encoder, a.cfg.Server.Pool(), req.Queries)
	if e != nil {
		writeError(w, e)
		return
	}
	snap := a.cfg.Server.Snapshot()
	classes, dists := snap.PredictBatch(a.cfg.Server.Pool(), hvs)
	a.cfg.Server.CountReads(len(hvs))
	writeJSON(w, http.StatusOK, PredictResponse{Version: snap.Version(), Classes: classes, Distances: dists})
}

func (a *API) handleLookup(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	srv := a.cfg.Server
	snap := srv.Snapshot()
	switch r.Method {
	case http.MethodGet:
		if key := r.URL.Query().Get("key"); key != "" {
			shard, member, slot := srv.Route(key)
			writeJSON(w, http.StatusOK, LookupResponse{
				Key: key, Shard: &shard, Member: member, Slot: &slot, Version: snap.Version(),
			})
			return
		}
		if sym := r.URL.Query().Get("symbol"); sym != "" {
			_, ok := snap.Item(sym)
			writeJSON(w, http.StatusOK, LookupResponse{Symbol: sym, Found: &ok, Version: snap.Version()})
			return
		}
		writeError(w, Errorf(CodeInvalidRequest, "need ?key= or ?symbol="))
	case http.MethodPost:
		var req LookupRequest
		if e := a.decodeBody(w, r, &req); e != nil {
			writeError(w, e)
			return
		}
		if e := validateRecord(a.cfg.Encoder, req.Features); e != nil {
			writeError(w, e)
			return
		}
		ctx, cancel := a.readCtx(r)
		defer cancel()
		g := a.admission()
		if e := g.acquire(ctx); e != nil {
			writeError(w, e)
			return
		}
		defer g.release()
		sym, sim, ok := snap.Lookup(a.cfg.Encoder.Encode(req.Features))
		srv.CountReads(1)
		if !ok {
			writeError(w, Errorf(CodeNotFound, "no items interned"))
			return
		}
		writeJSON(w, http.StatusOK, LookupResponse{Symbol: sym, Similarity: sim, Version: snap.Version()})
	}
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	rejected := a.gate.rejected.Load()
	if a.rgate != nil {
		rejected += a.rgate.rejected.Load()
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Stats:        a.cfg.Server.Stats(),
		HTTPRejected: rejected,
	})
}

func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	srv := a.cfg.Server
	resp := HealthResponse{Status: "ok", Version: srv.Snapshot().Version()}
	switch srv.State() {
	case serve.StateDegraded:
		reason, since, _ := srv.Degraded()
		resp.Status = "degraded"
		resp.Reason = reason.Error()
		resp.DegradedSince = since
	case serve.StateClosed:
		resp.Status = "closed"
	}
	// The read plane of a degraded node is healthy (200); only a probe
	// asking specifically about the write plane gets the 503 that tells a
	// write-routing balancer to drain this node.
	if r.URL.Query().Get("plane") == "write" && resp.Status != "ok" {
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot streams the current snapshot's binary serialization.
// Deliberately ungated: saving a live server is an operator action that
// must work while request traffic has the gate saturated.
func (a *API) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	snap := a.cfg.Server.Snapshot()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snapshot-Version", strconv.FormatUint(snap.Version(), 10))
	snap.WriteTo(w) // headers are committed; a mid-stream fault surfaces as a short body
}

// ---------------------------------------------------------------------------
// Streaming handlers
// ---------------------------------------------------------------------------

// streamWriter emits NDJSON response lines; callers flush once per
// coalesced batch (not per line) so a 100k-row stream costs hundreds of
// chunk writes, not 100k.
type streamWriter struct {
	w   http.ResponseWriter
	enc *json.Encoder
	rc  *http.ResponseController
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	// HTTP/1.x servers normally close the request body on the first
	// response write; these endpoints are deliberately duplex (acks flow
	// while rows still arrive), so opt in. Unsupported writers (HTTP/2
	// handles duplex natively, test recorders have no socket) are fine.
	rc.EnableFullDuplex()
	return &streamWriter{w: w, enc: json.NewEncoder(w), rc: rc}
}

func (sw *streamWriter) line(v any) error {
	return sw.enc.Encode(v) // Encode appends the \n
}

// flush pushes buffered lines to the client — called per batch, and after
// the terminal summary/error line.
func (sw *streamWriter) flush() { sw.rc.Flush() }

// rowDecoder reads NDJSON rows with unknown-field rejection and a hard
// per-row byte bound (the stream as a whole is unbounded by design). The
// bound is enforced on the raw line BEFORE any JSON is parsed or
// buffered, so an oversized row is rejected at MaxRowBytes — it cannot
// balloon process memory first.
type rowDecoder struct {
	br     *bufio.Reader
	maxRow int64
	buf    []byte
	rows   int
}

func newRowDecoder(r io.Reader, maxRow int64) *rowDecoder {
	return &rowDecoder{br: bufio.NewReaderSize(r, 64<<10), maxRow: maxRow}
}

// readLine returns the next newline-terminated line, bounded by maxRow.
// A nil line with a nil error is clean end of stream.
func (rd *rowDecoder) readLine() ([]byte, *Error) {
	rd.buf = rd.buf[:0]
	for {
		chunk, err := rd.br.ReadSlice('\n')
		rd.buf = append(rd.buf, chunk...)
		if int64(len(rd.buf)) > rd.maxRow {
			return nil, Errorf(CodeBodyTooLarge, "row %d exceeds %d bytes", rd.rows, rd.maxRow)
		}
		switch err {
		case nil:
			return rd.buf, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(bytes.TrimSpace(rd.buf)) == 0 {
				return nil, nil // body ended cleanly (with or without a final \n)
			}
			return rd.buf, nil // final unterminated line
		default:
			return nil, Errorf(CodeInternal, "row %d: reading stream: %v", rd.rows, err)
		}
	}
}

// next decodes one row into dst: (false, nil) at clean end of stream,
// (false, *Error) on a malformed or oversized row. Whitespace-only lines
// are skipped.
func (rd *rowDecoder) next(dst any) (bool, *Error) {
	for {
		line, e := rd.readLine()
		if e != nil {
			return false, e
		}
		if line == nil {
			return false, nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(dst); err != nil {
			return false, Errorf(CodeMalformedBody, "row %d: %v", rd.rows, err)
		}
		if dec.Decode(&struct{}{}) != io.EOF {
			return false, Errorf(CodeMalformedBody, "row %d: more than one JSON value on the line", rd.rows)
		}
		rd.rows++
		return true, nil
	}
}

func (a *API) handlePredictStream(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if e := checkContentType(r, "application/x-ndjson", "application/json"); e != nil {
		writeError(w, e)
		return
	}
	// One gate slot covers the whole stream: a bulk caller is one unit of
	// admitted work no matter how many rows it pushes. PredictDeadline
	// bounds admission only — the stream itself lives as long as the
	// client keeps rows coming.
	ctx, cancel := a.readCtx(r)
	g := a.admission()
	e := g.acquire(ctx)
	cancel()
	if e != nil {
		writeError(w, e)
		return
	}
	defer g.release()

	sw := newStreamWriter(w)
	rd := newRowDecoder(r.Body, a.cfg.MaxRowBytes)
	srv := a.cfg.Server
	pending := make([][]float64, 0, a.cfg.StreamBatch)

	flush := func() *Error {
		if len(pending) == 0 {
			return nil
		}
		hvs, e := encodeRecords(a.cfg.Encoder, srv.Pool(), pending)
		if e != nil {
			return e
		}
		snap := srv.Snapshot()
		classes, dists := snap.PredictBatch(srv.Pool(), hvs)
		srv.CountReads(len(hvs))
		for i := range classes {
			if err := sw.line(PredictResult{Class: classes[i], Distance: dists[i], Version: snap.Version()}); err != nil {
				return Errorf(CodeInternal, "writing result: %v", err)
			}
		}
		sw.flush()
		pending = pending[:0]
		return nil
	}

	for {
		var row PredictRow
		ok, e := rd.next(&row)
		if e != nil {
			sw.line(PredictResult{Error: e})
			sw.flush()
			return
		}
		if !ok {
			break
		}
		pending = append(pending, row.Features)
		if len(pending) >= a.cfg.StreamBatch {
			if e := flush(); e != nil {
				sw.line(PredictResult{Error: e})
				sw.flush()
				return
			}
		}
	}
	if e := flush(); e != nil {
		sw.line(PredictResult{Error: e})
		sw.flush()
	}
}

func (a *API) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if e := checkContentType(r, "application/x-ndjson", "application/json"); e != nil {
		writeError(w, e)
		return
	}
	g := a.admission()
	if e := g.acquire(r.Context()); e != nil {
		writeError(w, e)
		return
	}
	defer g.release()

	sw := newStreamWriter(w)
	rd := newRowDecoder(r.Body, a.cfg.MaxRowBytes)
	var (
		samples []Sample
		symbols []string
		rows    int
		total   int
		batches int
		version uint64
	)

	flush := func() *Error {
		if rows == 0 {
			return nil
		}
		b, e := a.buildBatch(samples, symbols)
		if e != nil {
			return e
		}
		// Each coalesced batch gets its own WriteDeadline window: a stream
		// is many writes, and the bound is per write, not per stream.
		ctx, cancel := a.writeCtx(r)
		snap, err := a.cfg.Server.ApplyBatchContext(ctx, b)
		cancel()
		if err != nil {
			return a.applyError(err)
		}
		version = snap.Version()
		batches++
		total += rows
		if err := sw.line(IngestAck{Version: version, Rows: rows}); err != nil {
			return Errorf(CodeInternal, "writing ack: %v", err)
		}
		sw.flush()
		samples, symbols, rows = samples[:0], symbols[:0], 0
		return nil
	}

	for {
		var row IngestRow
		ok, e := rd.next(&row)
		if e != nil {
			sw.line(IngestAck{Error: e})
			sw.flush()
			return
		}
		if !ok {
			break
		}
		if e := validateIngestRow(&row, rd.rows-1); e != nil {
			sw.line(IngestAck{Error: e})
			sw.flush()
			return
		}
		// Ownership is checked before the row joins the pending batch, so a
		// misrouted row can never ride an ack: batches acked earlier stand,
		// nothing after the last ack was applied.
		if e := a.checkRowOwnership(&row); e != nil {
			sw.line(IngestAck{Error: e})
			sw.flush()
			return
		}
		if row.Label != nil {
			samples = append(samples, Sample{Label: *row.Label, Features: row.Features})
		}
		if row.Symbol != "" {
			symbols = append(symbols, row.Symbol)
		}
		rows++
		if rows >= a.cfg.StreamBatch {
			if e := flush(); e != nil {
				sw.line(IngestAck{Error: e})
				sw.flush()
				return
			}
		}
	}
	if e := flush(); e != nil {
		sw.line(IngestAck{Error: e})
		sw.flush()
		return
	}
	sw.line(IngestAck{Done: true, Version: version, TotalRows: total, Batches: batches})
	sw.flush()
}

// validateIngestRow enforces the row contract before the row joins a
// batch: a labeled row carries features, a bare features array is
// meaningless, and a row must do something.
func validateIngestRow(row *IngestRow, idx int) *Error {
	switch {
	case row.Label != nil && len(row.Features) == 0:
		return Errorf(CodeInvalidRequest, "row %d: label without features", idx)
	case row.Label == nil && len(row.Features) > 0:
		return Errorf(CodeInvalidRequest, "row %d: features without a label", idx)
	case row.Label == nil && row.Symbol == "":
		return Errorf(CodeInvalidRequest, "row %d: empty row (need label+features and/or symbol)", idx)
	}
	return nil
}
