package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/serve"
)

// stallEncoder blocks every Encode while armed, so a test can hold a
// request inside the handler and fill the admission gate deliberately.
// (New probes Encode once at construction, before the test arms it.)
type stallEncoder struct {
	dim     int
	armed   atomic.Bool
	entered chan struct{} // one token per blocked Encode
	release chan struct{} // closed to let them all through
}

func (e *stallEncoder) Fields() int { return 2 }

func (e *stallEncoder) Encode(features []float64) *bitvec.Vector {
	if e.armed.Load() {
		e.entered <- struct{}{}
		<-e.release
	}
	return bitvec.New(e.dim)
}

func TestOverloadShedsWithStructured429(t *testing.T) {
	srv, err := serve.NewServer(serve.Config{Dim: 256, Classes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	enc := &stallEncoder{dim: 256, entered: make(chan struct{}, 8), release: make(chan struct{})}
	a, err := New(Config{
		Server: srv, Encoder: enc,
		MaxInFlight: 1, MaxQueue: 1, RetryAfter: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc.armed.Store(true)

	predict := func() *httptest.ResponseRecorder {
		rec, _ := doJSON(t, a, http.MethodPost, "/v1/predict", PredictRequest{Queries: [][]float64{{0.1, 0.2}}})
		return rec
	}

	// Request 1 takes the only in-flight slot and stalls inside Encode.
	r1 := make(chan *httptest.ResponseRecorder, 1)
	go func() { r1 <- predict() }()
	<-enc.entered

	// Request 2 takes the only queue slot (blocked in acquire, not piling
	// up bodies). Wait until the gate has actually counted it.
	r2 := make(chan *httptest.ResponseRecorder, 1)
	go func() { r2 <- predict() }()
	deadline := time.Now().Add(5 * time.Second)
	for a.gate.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request 2 never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Request 3 must be shed immediately: structured 429, machine-readable
	// code, Retry-After header and millisecond hint in the envelope.
	rec, out := doJSON(t, a, http.MethodPost, "/v1/predict", PredictRequest{Queries: [][]float64{{0.1, 0.2}}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if got := errCode(t, out); got != string(CodeOverloaded) {
		t.Errorf("error code = %q", got)
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 3 {
		t.Errorf("Retry-After header = %q, want >= 3s", rec.Header().Get("Retry-After"))
	}
	env := out["error"].(map[string]any)
	if env["retry_after_ms"].(float64) != 3000 {
		t.Errorf("retry_after_ms = %v", env["retry_after_ms"])
	}

	// Streams pass through the same gate: a fourth caller's stream is shed
	// before it can start.
	recS, _ := postStream(t, a, "/v1/predict:stream", "")
	if recS.Code != http.StatusTooManyRequests {
		t.Errorf("stream under overload = %d, want 429", recS.Code)
	}

	// Release the stall: both admitted requests complete fine.
	close(enc.release)
	for i, ch := range []chan *httptest.ResponseRecorder{r1, r2} {
		select {
		case rec := <-ch:
			if rec.Code != http.StatusOK {
				t.Errorf("admitted request %d = %d: %s", i+1, rec.Code, rec.Body.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("admitted request %d never completed", i+1)
		}
	}

	// The shed requests show up in the operator stats.
	_, stats := doJSON(t, a, http.MethodGet, "/v1/stats", nil)
	if stats["http_rejected"].(float64) < 2 {
		t.Errorf("http_rejected = %v, want >= 2", stats["http_rejected"])
	}
}

func TestGateQueueWaitsAndCancels(t *testing.T) {
	g := newGate(1, 1, time.Second)
	if e := g.acquire(t.Context()); e != nil {
		t.Fatalf("first acquire: %v", e)
	}
	// Queue slot: acquire blocks until release.
	got := make(chan *Error, 1)
	go func() { got <- g.acquire(t.Context()) }()
	deadline := time.Now().Add(5 * time.Second)
	for g.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Overflow is rejected with the retry hint.
	e := g.acquire(t.Context())
	if e == nil || e.Code != CodeOverloaded || e.RetryAfterMS != 1000 {
		t.Fatalf("overflow acquire = %v", e)
	}
	g.release()
	if e := <-got; e != nil {
		t.Fatalf("queued acquire after release: %v", e)
	}
	g.release()
	// Empty gate admits immediately again.
	if e := g.acquire(t.Context()); e != nil {
		t.Fatalf("post-drain acquire: %v", e)
	}
}
