package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postStream drives one NDJSON request through the handler and decodes
// every response line into out (a *[]T).
func postStream(t *testing.T, a *API, path, body string) (*httptest.ResponseRecorder, []map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, req)
	var lines []map[string]any
	dec := json.NewDecoder(bytes.NewReader(rec.Body.Bytes()))
	for dec.More() {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("bad NDJSON line in response: %v\n%s", err, rec.Body.String())
		}
		lines = append(lines, line)
	}
	return rec, lines
}

// ndjson joins rows into an NDJSON body.
func ndjson(t *testing.T, rows ...any) string {
	t.Helper()
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

func TestIngestStreamCoalescesAndAcks(t *testing.T) {
	a := testAPI(t, func(c *Config) { c.StreamBatch = 4 })
	label := func(i int) *int { return &i }
	var rows []any
	for i := 0; i < 10; i++ {
		f := float64(i%5) / 5
		rows = append(rows, IngestRow{Label: label(i % 3), Features: []float64{f, 1 - f}})
	}
	rows = append(rows, IngestRow{Symbol: "sensor-a"}) // 11th row: symbol only

	rec, lines := postStream(t, a, "/v1/ingest:stream", ndjson(t, rows...))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/ingest:stream = %d: %s", rec.Code, rec.Body.String())
	}
	// 11 rows at StreamBatch=4 → acks for 4, 4, 3, then the summary.
	if len(lines) != 4 {
		t.Fatalf("got %d response lines, want 4: %v", len(lines), lines)
	}
	wantRows := []float64{4, 4, 3}
	for i, want := range wantRows {
		if lines[i]["rows"].(float64) != want || lines[i]["version"].(float64) != float64(i+1) {
			t.Errorf("ack %d = %v, want rows=%v version=%d", i, lines[i], want, i+1)
		}
	}
	sum := lines[3]
	if sum["done"] != true || sum["total_rows"].(float64) != 11 || sum["batches"].(float64) != 3 || sum["version"].(float64) != 3 {
		t.Errorf("summary = %v", sum)
	}

	_, stats := doJSON(t, a, http.MethodGet, "/v1/stats", nil)
	if stats["version"].(float64) != 3 || stats["samples"].(float64) != 10 || stats["items"].(float64) != 1 {
		t.Errorf("post-ingest stats: %v", stats)
	}
}

func TestPredictStreamOrderedResults(t *testing.T) {
	a := testAPI(t, func(c *Config) { c.StreamBatch = 2 })
	doJSON(t, a, http.MethodPost, "/v1/train", trainBody(10))

	queries := [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}, {0.1, 0.1}, {0.9, 0.1}}
	var rows []any
	for _, q := range queries {
		rows = append(rows, PredictRow{Features: q})
	}
	rec, lines := postStream(t, a, "/v1/predict:stream", ndjson(t, rows...))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/predict:stream = %d: %s", rec.Code, rec.Body.String())
	}
	if len(lines) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(lines), len(queries))
	}
	// Streamed results must match the unary endpoint bit for bit.
	_, unary := doJSON(t, a, http.MethodPost, "/v1/predict", PredictRequest{Queries: queries})
	uc := unary["classes"].([]any)
	ud := unary["distances"].([]any)
	for i, line := range lines {
		if line["class"].(float64) != uc[i].(float64) || line["distance"].(float64) != ud[i].(float64) {
			t.Errorf("stream result %d = %v, unary = (%v, %v)", i, line, uc[i], ud[i])
		}
		if line["version"].(float64) != 1 {
			t.Errorf("stream result %d version = %v", i, line["version"])
		}
	}
}

func TestStreamFaultsReportedInBand(t *testing.T) {
	a := testAPI(t, func(c *Config) { c.StreamBatch = 2; c.MaxRowBytes = 256 })
	label := 0

	cases := []struct {
		name string
		body string
		code Code
	}{
		{"malformed row", `{"label":0,"features":[0.1,0.2]}` + "\n" + `{nope` + "\n", CodeMalformedBody},
		{"unknown field", `{"label":0,"features":[0.1,0.2],"bogus":1}` + "\n", CodeMalformedBody},
		{"label without features", ndjson(t, IngestRow{Label: &label}), CodeInvalidRequest},
		{"features without label", ndjson(t, IngestRow{Features: []float64{0.1, 0.2}}), CodeInvalidRequest},
		{"empty row", "{}\n", CodeInvalidRequest},
		{"wrong arity", ndjson(t, IngestRow{Label: &label, Features: []float64{0.1}}), CodeInvalidRequest},
		{"oversized row", fmt.Sprintf(`{"symbol":%q}`, strings.Repeat("x", 512)) + "\n", CodeBodyTooLarge},
	}
	for _, c := range cases {
		rec, lines := postStream(t, a, "/v1/ingest:stream", c.body)
		if rec.Code != http.StatusOK {
			t.Errorf("%s: stream status %d (faults are in-band)", c.name, rec.Code)
			continue
		}
		if len(lines) == 0 {
			t.Errorf("%s: no response lines", c.name)
			continue
		}
		last := lines[len(lines)-1]
		env, ok := last["error"].(map[string]any)
		if !ok {
			t.Errorf("%s: last line is not an error: %v", c.name, last)
			continue
		}
		if env["code"].(string) != string(c.code) {
			t.Errorf("%s: code %v, want %s", c.name, env["code"], c.code)
		}
	}

	// A fault after complete batches keeps them applied: 2 good rows (one
	// full batch) then garbage → version advanced to 1, rows 1-2 durable.
	body := ndjson(t,
		IngestRow{Label: &label, Features: []float64{0.1, 0.2}},
		IngestRow{Label: &label, Features: []float64{0.3, 0.4}},
	) + "{nope\n"
	_, lines := postStream(t, a, "/v1/ingest:stream", body)
	if len(lines) != 2 {
		t.Fatalf("want ack + error, got %v", lines)
	}
	if lines[0]["version"].(float64) != 1 || lines[0]["rows"].(float64) != 2 {
		t.Errorf("pre-fault ack = %v", lines[0])
	}
	_, stats := doJSON(t, a, http.MethodGet, "/v1/stats", nil)
	if stats["version"].(float64) != 1 || stats["samples"].(float64) != 2 {
		t.Errorf("stats after mid-stream fault: %v", stats)
	}

	// Predict stream: content-type is enforced before streaming begins.
	req := httptest.NewRequest(http.MethodPost, "/v1/predict:stream", strings.NewReader("{}"))
	req.Header.Set("Content-Type", "text/csv")
	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnsupportedMediaType {
		t.Errorf("csv predict stream = %d", rec.Code)
	}
}

func TestStreamEquivalentToUnaryTrain(t *testing.T) {
	// Ingesting rows through the stream must land bit-identically to the
	// same samples applied through /v1/train with matching batch splits.
	streamAPI := testAPI(t, func(c *Config) { c.StreamBatch = 5 })
	unaryAPI := testAPI(t)

	req := trainBody(5) // 15 samples + 2 symbols
	var rows []any
	for i := range req.Samples {
		s := req.Samples[i]
		row := IngestRow{Label: &s.Label, Features: s.Features}
		rows = append(rows, row)
	}
	// Symbols ride the last rows, mirroring a 5-row batch split: unary
	// applies [0:5),[5:10),[10:15) with symbols in the final batch.
	rows[10] = IngestRow{Label: &req.Samples[10].Label, Features: req.Samples[10].Features, Symbol: req.Symbols[0]}
	rows[11] = IngestRow{Label: &req.Samples[11].Label, Features: req.Samples[11].Features, Symbol: req.Symbols[1]}

	if rec, _ := postStream(t, streamAPI, "/v1/ingest:stream", ndjson(t, rows...)); rec.Code != http.StatusOK {
		t.Fatalf("stream ingest failed: %d", rec.Code)
	}
	for b := 0; b < 3; b++ {
		sub := TrainRequest{Samples: req.Samples[5*b : 5*b+5]}
		if b == 2 {
			sub.Symbols = req.Symbols
		}
		if rec, _ := doJSON(t, unaryAPI, http.MethodPost, "/v1/train", sub); rec.Code != http.StatusOK {
			t.Fatalf("unary train %d failed", b)
		}
	}

	var sa, sb bytes.Buffer
	if _, err := streamAPI.Server().Snapshot().WriteTo(&sa); err != nil {
		t.Fatal(err)
	}
	if _, err := unaryAPI.Server().Snapshot().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Fatalf("streamed ingest diverged from unary train: %d vs %d snapshot bytes", sa.Len(), sb.Len())
	}
}
