package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hdcirc/internal/serve"
)

// testAPI builds the standard fixture: a 3-class, 2-shard server behind
// the v1 handler, 2-field records over the unit square.
func testAPI(t *testing.T, mutate ...func(*Config)) *API {
	t.Helper()
	srv, err := serve.NewServer(serve.Config{Dim: 1024, Classes: 3, Shards: 2, Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewScalarRecordEncoder(ScalarRecordConfig{Dim: 1024, Fields: 2, Lo: 0, Hi: 1, Levels: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Server: srv, Encoder: enc}
	for _, m := range mutate {
		m(&cfg)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if ct := rec.Header().Get("Content-Type"); ct == "application/json" {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec, out
}

// errCode digs the envelope code out of a non-2xx response.
func errCode(t *testing.T, out map[string]any) string {
	t.Helper()
	env, ok := out["error"].(map[string]any)
	if !ok {
		t.Fatalf("response is not an error envelope: %v", out)
	}
	return env["code"].(string)
}

// trainBody builds a linearly separable workload: class i's features
// cluster around distinct corners of the unit square.
func trainBody(perClass int) TrainRequest {
	centers := [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}}
	var req TrainRequest
	for class, c := range centers {
		for j := 0; j < perClass; j++ {
			jit := 0.02 * float64(j%5)
			req.Samples = append(req.Samples, Sample{
				Label:    class,
				Features: []float64{c[0] + jit, c[1] - jit},
			})
		}
	}
	req.Symbols = []string{"sensor-a", "sensor-b"}
	return req
}

func TestTrainPredictRoundTrip(t *testing.T) {
	a := testAPI(t)

	rec, out := doJSON(t, a, http.MethodPost, "/v1/train", trainBody(10))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/train = %d: %s", rec.Code, rec.Body.String())
	}
	if out["version"].(float64) != 1 || out["trained"].(float64) != 30 || out["items"].(float64) != 2 {
		t.Fatalf("train response: %v", out)
	}

	rec, out = doJSON(t, a, http.MethodPost, "/v1/predict", PredictRequest{
		Queries: [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/predict = %d: %s", rec.Code, rec.Body.String())
	}
	classes := out["classes"].([]any)
	for want, got := range classes {
		if int(got.(float64)) != want {
			t.Errorf("query %d classified as %v", want, got)
		}
	}
	if out["version"].(float64) != 1 {
		t.Errorf("predict version = %v", out["version"])
	}
	if len(out["distances"].([]any)) != 3 {
		t.Errorf("distances = %v", out["distances"])
	}
}

func TestLookupSurfaces(t *testing.T) {
	a := testAPI(t)
	if rec, _ := doJSON(t, a, http.MethodPost, "/v1/train", trainBody(4)); rec.Code != http.StatusOK {
		t.Fatal("train failed")
	}

	// Key routing: deterministic, in range.
	rec, out := doJSON(t, a, http.MethodGet, "/v1/lookup?key=user-42", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/lookup?key = %d", rec.Code)
	}
	shard := out["shard"].(float64)
	if shard < 0 || shard >= 2 {
		t.Errorf("shard = %v", shard)
	}
	if out["member"].(string) != fmt.Sprintf("shard/%d", int(shard)) {
		t.Errorf("member = %v", out["member"])
	}
	_, out2 := doJSON(t, a, http.MethodGet, "/v1/lookup?key=user-42", nil)
	if out2["shard"].(float64) != shard {
		t.Error("routing not deterministic")
	}

	// Symbol membership.
	rec, out = doJSON(t, a, http.MethodGet, "/v1/lookup?symbol=sensor-a", nil)
	if rec.Code != http.StatusOK || out["found"].(bool) != true {
		t.Errorf("symbol lookup: %d %v", rec.Code, out)
	}
	_, out = doJSON(t, a, http.MethodGet, "/v1/lookup?symbol=missing", nil)
	if out["found"].(bool) != false {
		t.Errorf("phantom symbol: %v", out)
	}

	// Cleanup by features returns some interned symbol with a similarity.
	rec, out = doJSON(t, a, http.MethodPost, "/v1/lookup", LookupRequest{Features: []float64{0.3, 0.3}})
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/lookup POST = %d", rec.Code)
	}
	if s := out["symbol"].(string); s != "sensor-a" && s != "sensor-b" {
		t.Errorf("cleanup symbol = %q", s)
	}

	// Neither key nor symbol → structured 400.
	rec, out = doJSON(t, a, http.MethodGet, "/v1/lookup", nil)
	if rec.Code != http.StatusBadRequest || errCode(t, out) != string(CodeInvalidRequest) {
		t.Errorf("bare /v1/lookup = %d %v", rec.Code, out)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	a := testAPI(t)
	doJSON(t, a, http.MethodPost, "/v1/train", trainBody(5))
	doJSON(t, a, http.MethodPost, "/v1/predict", PredictRequest{Queries: [][]float64{{0.2, 0.2}}})

	rec, out := doJSON(t, a, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/stats = %d", rec.Code)
	}
	if out["version"].(float64) != 1 || out["samples"].(float64) != 15 {
		t.Errorf("stats: %v", out)
	}
	if out["shards"].(float64) != 2 || out["classes"].(float64) != 3 {
		t.Errorf("stats shape: %v", out)
	}
	if out["reads_served"].(float64) < 1 {
		t.Errorf("reads_served: %v", out["reads_served"])
	}
	if out["durable"] != false {
		t.Errorf("in-memory server reports durable: %v", out["durable"])
	}

	rec, out = doJSON(t, a, http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusOK || out["status"] != "ok" || out["version"].(float64) != 1 {
		t.Errorf("/v1/healthz = %d %v", rec.Code, out)
	}
}

func TestSnapshotDownloadWarmStart(t *testing.T) {
	a := testAPI(t)
	doJSON(t, a, http.MethodPost, "/v1/train", trainBody(8))

	req := httptest.NewRequest(http.MethodGet, "/v1/snapshot", nil)
	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/snapshot = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Snapshot-Version"); got != "1" {
		t.Errorf("snapshot version header = %q", got)
	}

	// Warm-start a second server from the downloaded bytes (the -load path).
	b := testAPI(t)
	if err := b.Server().Restore(bytes.NewReader(rec.Body.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Both servers must answer identically.
	queries := PredictRequest{Queries: [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}, {0.4, 0.6}}}
	_, outA := doJSON(t, a, http.MethodPost, "/v1/predict", queries)
	_, outB := doJSON(t, b, http.MethodPost, "/v1/predict", queries)
	ca, cb := outA["classes"].([]any), outB["classes"].([]any)
	for i := range ca {
		if ca[i].(float64) != cb[i].(float64) {
			t.Fatalf("warm-started server disagrees on query %d: %v vs %v", i, ca[i], cb[i])
		}
	}
}

func TestRequestValidationAndHardening(t *testing.T) {
	a := testAPI(t, func(c *Config) { c.MaxBodyBytes = 2048 })
	cases := []struct {
		name         string
		method, path string
		body         any
		want         int
		code         Code
	}{
		{"train wrong method", http.MethodGet, "/v1/train", nil, http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"predict wrong method", http.MethodGet, "/v1/predict", nil, http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"stats wrong method", http.MethodPost, "/v1/stats", nil, http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"snapshot wrong method", http.MethodPost, "/v1/snapshot", nil, http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"healthz wrong method", http.MethodPost, "/v1/healthz", nil, http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"empty train", http.MethodPost, "/v1/train", TrainRequest{}, http.StatusBadRequest, CodeInvalidRequest},
		{"empty predict", http.MethodPost, "/v1/predict", PredictRequest{}, http.StatusBadRequest, CodeInvalidRequest},
		{"wrong arity", http.MethodPost, "/v1/train", TrainRequest{
			Samples: []Sample{{Label: 0, Features: []float64{1}}},
		}, http.StatusBadRequest, CodeInvalidRequest},
		{"class range", http.MethodPost, "/v1/train", TrainRequest{
			Samples: []Sample{{Label: 99, Features: []float64{0.1, 0.2}}},
		}, http.StatusBadRequest, CodeInvalidRequest},
		{"predict arity", http.MethodPost, "/v1/predict", PredictRequest{Queries: [][]float64{{0.5}}}, http.StatusBadRequest, CodeInvalidRequest},
		{"unknown route", http.MethodGet, "/train", nil, http.StatusNotFound, CodeNotFound},
		{"unknown v1 route", http.MethodPost, "/v1/nope", nil, http.StatusNotFound, CodeNotFound},
		{"unknown field", http.MethodPost, "/v1/predict", map[string]any{
			"queries": [][]float64{{0.1, 0.2}}, "shenanigans": true,
		}, http.StatusBadRequest, CodeMalformedBody},
	}
	for _, c := range cases {
		rec, out := doJSON(t, a, c.method, c.path, c.body)
		if rec.Code != c.want {
			t.Errorf("%s (%s %s): code %d, want %d — %s", c.name, c.method, c.path, rec.Code, c.want, rec.Body.String())
			continue
		}
		if got := errCode(t, out); got != string(c.code) {
			t.Errorf("%s: error code %q, want %q", c.name, got, c.code)
		}
	}

	raw := func(body, contentType string) (*httptest.ResponseRecorder, map[string]any) {
		req := httptest.NewRequest(http.MethodPost, "/v1/train", strings.NewReader(body))
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		rec := httptest.NewRecorder()
		a.ServeHTTP(rec, req)
		var out map[string]any
		json.Unmarshal(rec.Body.Bytes(), &out)
		return rec, out
	}

	// Malformed JSON body.
	if rec, out := raw("{nope", "application/json"); rec.Code != http.StatusBadRequest || errCode(t, out) != string(CodeMalformedBody) {
		t.Errorf("malformed JSON = %d %v", rec.Code, out)
	}
	// Trailing garbage after a valid document.
	if rec, out := raw(`{"symbols":["a"]} {"again":true}`, "application/json"); rec.Code != http.StatusBadRequest || errCode(t, out) != string(CodeMalformedBody) {
		t.Errorf("trailing data = %d %v", rec.Code, out)
	}
	// Wrong Content-Type.
	if rec, out := raw(`{"symbols":["a"]}`, "text/plain"); rec.Code != http.StatusUnsupportedMediaType || errCode(t, out) != string(CodeUnsupportedMedia) {
		t.Errorf("wrong content type = %d %v", rec.Code, out)
	}
	// Oversized body: MaxBytesReader must stop the decode, not buffer it.
	big := fmt.Sprintf(`{"symbols":[%q]}`, strings.Repeat("x", 4096))
	if rec, out := raw(big, "application/json"); rec.Code != http.StatusRequestEntityTooLarge || errCode(t, out) != string(CodeBodyTooLarge) {
		t.Errorf("oversized body = %d %v", rec.Code, out)
	}

	// A failed batch must not advance the version.
	_, out := doJSON(t, a, http.MethodGet, "/v1/stats", nil)
	if out["version"].(float64) != 0 {
		t.Errorf("rejected requests advanced version to %v", out["version"])
	}
}

// TestConcurrentTrafficThroughHandlers hammers predict from several
// goroutines while training writes land — the HTTP-level smoke version of
// the serving layer's race guarantee (run with -race in CI).
func TestConcurrentTrafficThroughHandlers(t *testing.T) {
	a := testAPI(t)
	doJSON(t, a, http.MethodPost, "/v1/train", trainBody(5))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec, _ := doJSON(t, a, http.MethodPost, "/v1/predict",
					PredictRequest{Queries: [][]float64{{0.1, 0.1}, {0.5, 0.9}}})
				if rec.Code != http.StatusOK {
					t.Errorf("predict under load = %d", rec.Code)
					return
				}
			}
		}()
	}
	for b := 0; b < 10; b++ {
		if rec, _ := doJSON(t, a, http.MethodPost, "/v1/train", trainBody(3)); rec.Code != http.StatusOK {
			t.Fatalf("train under load = %d", rec.Code)
		}
	}
	close(stop)
	wg.Wait()
	_, out := doJSON(t, a, http.MethodGet, "/v1/stats", nil)
	if out["version"].(float64) != 11 {
		t.Errorf("final version = %v, want 11", out["version"])
	}
}
