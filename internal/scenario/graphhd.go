package scenario

import (
	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/graph"
	"hdcirc/internal/rng"
)

// GraphHD classification (Nunes et al., DATE 2022 lineage): three
// synthetic random-graph families with matched average degree — Erdős–
// Rényi, preferential attachment, Watts–Strogatz — separable only by
// structure. The wire record is the flattened upper triangle of the
// adjacency matrix (one 0/1 float per vertex pair); the server-side
// encoder rebuilds the graph, ranks vertices by degree centrality, and
// bundles the bound endpoint pairs of every edge, so isomorphic graphs
// encode identically up to tie order.

const (
	graphhdDim      = 4096
	graphhdSeed     = 2003
	graphhdVertices = 40
	graphhdTrain    = 30 // per family
	graphhdTest     = 20 // per family
)

var graphhdFamilies = []string{"erdos-renyi", "pref-attach", "watts-strogatz"}

// graphEncoder is the serving encoder for the graphhd scenario.
type graphEncoder struct {
	vertices int
	basis    *core.Set
	tieVec   *bitvec.Vector
}

func (e *graphEncoder) Fields() int { return e.vertices * (e.vertices - 1) / 2 }

// Encode rebuilds the graph from its upper-triangle adjacency record
// (values >= 0.5 are edges) and returns the GraphHD edge bundle.
func (e *graphEncoder) Encode(features []float64) *bitvec.Vector {
	g := graph.New(e.vertices)
	i := 0
	for u := 0; u < e.vertices; u++ {
		for v := u + 1; v < e.vertices; v++ {
			if features[i] >= 0.5 {
				g.AddEdge(u, v)
			}
			i++
		}
	}
	rank := g.DegreeRank()
	acc := bitvec.NewAccumulator(e.basis.Dim())
	tmp := bitvec.New(e.basis.Dim())
	for _, edge := range g.Edges() {
		e.basis.At(rank[edge[0]]).XorInto(e.basis.At(rank[edge[1]]), tmp)
		acc.Add(tmp)
	}
	return acc.ThresholdTieVector(e.tieVec)
}

// graphToRow flattens a graph into its wire record.
func graphToRow(g *graph.Graph, label int) Row {
	n := g.N()
	features := make([]float64, n*(n-1)/2)
	i := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.HasEdge(u, v) {
				features[i] = 1
			}
			i++
		}
	}
	return Row{Label: label, Features: features}
}

// genFamilyGraph draws one graph of the given family with matched average
// degree (~4), so density alone cannot separate the classes.
func genFamilyGraph(class, n int, r *rng.Stream) *graph.Graph {
	switch class {
	case 0:
		return graph.ErdosRenyi(n, 4/float64(n-1), r)
	case 1:
		return graph.PreferentialAttachment(n, 2, r)
	default:
		return graph.WattsStrogatz(n, 4, 0.1, r)
	}
}

func buildGraphHD() *Scenario {
	sc := &Scenario{
		Name:        "graphhd",
		Description: "GraphHD: three random-graph families, centrality-ranked edge-bundle encoding",
		Dim:         graphhdDim,
		Classes:     len(graphhdFamilies),
		Shards:      2,
		Seed:        graphhdSeed,
		ClassNames:  graphhdFamilies,
		Encoder: &graphEncoder{
			vertices: graphhdVertices,
			basis:    core.RandomSet(graphhdVertices, graphhdDim, rng.Sub(graphhdSeed, "scenario/graphhd/basis")),
			tieVec:   bitvec.Random(graphhdDim, rng.Sub(graphhdSeed, "scenario/graphhd/ties")),
		},
		AccuracyFloor: 0.60,
	}
	gen := func(split string, per int) []Row {
		stream := rng.Sub(graphhdSeed, "scenario/graphhd/"+split)
		var rows []Row
		for class := range graphhdFamilies {
			for i := 0; i < per; i++ {
				rows = append(rows, graphToRow(genFamilyGraph(class, graphhdVertices, stream), class))
			}
		}
		return rows
	}
	sc.Train = gen("train", graphhdTrain)
	sc.Test = gen("test", graphhdTest)
	return sc
}
