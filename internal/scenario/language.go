package scenario

import (
	"fmt"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/dataset"
	"hdcirc/internal/embed"
	"hdcirc/internal/rng"
)

// Language identification: sentences drawn from per-language first-order
// Markov chains (internal/dataset.GenText), served as fixed-length letter
// sequences. The wire record is one float per character position, each
// value the letter's alphabet index; the server-side encoder maps letters
// through a shared random basis and bundles the bound trigrams — the
// classical n-gram encoding of Section 3.1's lineage.

const (
	languageDim   = 4096
	languageSeed  = 1009
	languageNGram = 3
)

// textEncoder is the serving encoder for the language scenario.
type textEncoder struct {
	fields  int
	letters *core.Set
	ngram   *embed.NGramEncoder
}

func (e *textEncoder) Fields() int { return e.fields }

// Encode maps one sentence record — letter indices as floats — to its
// trigram bundle. Indices are rounded and clamped to the alphabet so a
// slightly off-grid float (JSON round-tripping) still lands on a letter.
func (e *textEncoder) Encode(features []float64) *bitvec.Vector {
	seq := make([]*bitvec.Vector, len(features))
	for i, f := range features {
		idx := int(f + 0.5)
		if idx < 0 {
			idx = 0
		}
		if idx >= e.letters.Len() {
			idx = e.letters.Len() - 1
		}
		seq[i] = e.letters.At(idx)
	}
	return e.ngram.Encode(seq)
}

func textToRow(s dataset.TextSample) Row {
	features := make([]float64, len(s.Text))
	for i := 0; i < len(s.Text); i++ {
		features[i] = float64(s.Text[i] - 'a')
	}
	return Row{Label: s.Label, Features: features}
}

func buildLanguage() *Scenario {
	cfg := dataset.DefaultTextConfig()
	ds := dataset.GenText(cfg, languageSeed)
	sc := &Scenario{
		Name:        "language",
		Description: "language identification: Markov-chain sentences, trigram bundle encoding",
		Dim:         languageDim,
		Classes:     cfg.NumLanguages,
		Shards:      2,
		Seed:        languageSeed,
		Encoder: &textEncoder{
			fields:  cfg.SentenceLen,
			letters: core.RandomSet(cfg.Alphabet, languageDim, rng.Sub(languageSeed, "scenario/language/letters")),
			ngram:   embed.NewNGramEncoder(languageDim, languageNGram, languageSeed),
		},
		AccuracyFloor: 0.90,
	}
	for g := 0; g < cfg.NumLanguages; g++ {
		sc.ClassNames = append(sc.ClassNames, fmt.Sprintf("lang-%d", g))
	}
	for _, s := range ds.Train {
		sc.Train = append(sc.Train, textToRow(s))
	}
	for _, s := range ds.Test {
		sc.Test = append(sc.Test, textToRow(s))
	}
	return sc
}
