package scenario

import (
	"fmt"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/dataset"
	"hdcirc/internal/embed"
	"hdcirc/internal/rng"
)

// Streaming signals: EMG gesture windows (internal/dataset.GenEMG, the
// Rahimi et al. 2016 biosignal lineage). One wire record is one flattened
// analysis window — WindowLen time steps × Channels rectified amplitudes
// in [0, 1] — the natural unit a streaming front end ships per sensor
// window. The server-side encoder quantizes each amplitude onto a level
// basis, binds it to its channel key, bundles each time step, and
// sequence-bundles the permuted steps: the temporal-record pipeline. The
// per-class prototype distance in the predict response doubles as an
// anomaly score — a window far from every gesture centroid is an outlier
// even when a class is nominally assigned.

const (
	signalsDim       = 4096
	signalsSeed      = 3001
	signalsAmpLevels = 16
)

// emgEncoder is the serving encoder for the signals scenario.
type emgEncoder struct {
	window   int
	channels int
	record   *embed.RecordEncoder
	seq      *embed.SequenceEncoder
	fields   []embed.FieldEncoder
}

func (e *emgEncoder) Fields() int { return e.window * e.channels }

// Encode reshapes the flat record back into [window][channels] and runs
// the temporal-record pipeline. Amplitudes are clamped to [0, 1] so a
// slightly out-of-range float still encodes.
func (e *emgEncoder) Encode(features []float64) *bitvec.Vector {
	steps := make([]*bitvec.Vector, e.window)
	row := make([]float64, e.channels)
	for t := 0; t < e.window; t++ {
		for ch := 0; ch < e.channels; ch++ {
			v := features[t*e.channels+ch]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			row[ch] = v
		}
		steps[t] = e.record.EncodeRecord(row, e.fields)
	}
	return e.seq.Encode(steps)
}

func emgToRow(s dataset.EMGSample) Row {
	channels := len(s.Window[0])
	features := make([]float64, 0, len(s.Window)*channels)
	for _, step := range s.Window {
		features = append(features, step...)
	}
	return Row{Label: s.Label, Features: features}
}

func buildSignals() *Scenario {
	cfg := dataset.DefaultEMGConfig()
	ds := dataset.GenEMG(cfg, signalsSeed)
	basis := core.Config{Kind: core.KindLevel, M: signalsAmpLevels, D: signalsDim}.
		Build(rng.Sub(signalsSeed, "scenario/signals/levels"))
	amp := embed.NewScalarEncoder(basis, 0, 1)
	fields := make([]embed.FieldEncoder, cfg.Channels)
	for i := range fields {
		fields[i] = amp
	}
	sc := &Scenario{
		Name:        "signals",
		Description: "streaming EMG windows: level-quantized channels, permuted sequence bundle",
		Dim:         signalsDim,
		Classes:     cfg.NumGestures,
		Shards:      2,
		Seed:        signalsSeed,
		Encoder: &emgEncoder{
			window:   cfg.WindowLen,
			channels: cfg.Channels,
			record:   embed.NewRecordEncoder(signalsDim, cfg.Channels, signalsSeed),
			seq:      embed.NewSequenceEncoder(signalsDim, signalsSeed),
			fields:   fields,
		},
		AccuracyFloor: 0.60,
	}
	for g := 0; g < cfg.NumGestures; g++ {
		sc.ClassNames = append(sc.ClassNames, fmt.Sprintf("gesture-%d", g))
	}
	for _, s := range ds.Train {
		sc.Train = append(sc.Train, emgToRow(s))
	}
	for _, s := range ds.Test {
		sc.Test = append(sc.Test, emgToRow(s))
	}
	return sc
}
