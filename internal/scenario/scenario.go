// Package scenario turns the repo's dormant domain pipelines into served
// workloads: end-to-end recipes that drive serving protocol v1 with real
// traffic shapes instead of the single loopback fixture hdcbench measures.
// Each scenario bundles everything one server needs to host it — model
// geometry (dimension, classes, shards), a deterministic wire encoder
// mapping flat feature records to the domain encoding, train/test splits
// as wire rows, and the test-accuracy floor the served pipeline must
// reach, so the same recipe doubles as a correctness test and a load
// workload.
//
// Three scenarios ship:
//
//   - language: language identification over Markov-chain text — letters
//     map through a shared random basis and sentences become bundles of
//     bound trigrams (the classical n-gram text encoding).
//   - graphhd: GraphHD classification of three random-graph families —
//     a graph is the bundle of its edges, endpoints keyed by degree-
//     centrality rank, shipped on the wire as a flattened upper-triangle
//     adjacency matrix.
//   - signals: streaming EMG gesture windows — each time step bundles
//     channel-keyed amplitude levels and the window is a permuted
//     sequence bundle, the biosignal pipeline served one flattened
//     window per row.
//
// cmd/hdcserve hosts a scenario with -scenario NAME; cmd/hdcload replays
// its splits as open- or closed-loop traffic through the client SDK.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"hdcirc/internal/httpapi"
	"hdcirc/internal/serve"
)

// Row is one labeled wire record: the flat feature vector a scenario
// ships over /v1 and the class it belongs to.
type Row struct {
	Label    int
	Features []float64
}

// Scenario is one end-to-end served workload. Every field is
// deterministic in Seed: two Build calls yield bit-identical encoders and
// splits, which is what lets a load generator on one side of the wire and
// a server on the other agree without shipping model state.
type Scenario struct {
	// Name is the registry key (also the hdcserve -scenario value).
	Name string
	// Description is a one-line operator summary.
	Description string
	// Dim is the hypervector dimension the scenario's server must use.
	Dim int
	// Classes is the label count.
	Classes int
	// Shards is the recommended sub-model shard count.
	Shards int
	// Seed derives every stream on both sides of the wire.
	Seed uint64
	// ClassNames names the labels in order (observability only).
	ClassNames []string
	// Encoder maps one wire record to its domain hypervector. It is
	// stateless per call and safe for concurrent use, as the serving
	// handler requires.
	Encoder httpapi.Encoder
	// Train and Test are the deterministic splits.
	Train []Row
	Test  []Row
	// AccuracyFloor is the minimum test accuracy the served pipeline must
	// reach after ingesting Train — asserted by the scenario tests and by
	// hdcload's calibration pass, so a scenario that stops learning fails
	// loudly instead of load-testing garbage.
	AccuracyFloor float64
}

// ServerConfig returns the serve.Config a server hosting this scenario
// must be built with.
func (s *Scenario) ServerConfig() serve.Config {
	return serve.Config{Dim: s.Dim, Classes: s.Classes, Shards: s.Shards, Seed: s.Seed}
}

// Fields returns the wire record arity.
func (s *Scenario) Fields() int { return s.Encoder.Fields() }

// IngestRows converts the training split to bulk-ingest wire rows.
func (s *Scenario) IngestRows() []httpapi.IngestRow {
	rows := make([]httpapi.IngestRow, len(s.Train))
	for i := range s.Train {
		label := s.Train[i].Label
		rows[i] = httpapi.IngestRow{Label: &label, Features: s.Train[i].Features}
	}
	return rows
}

// TestFeatures returns the test split's feature records, in split order.
func (s *Scenario) TestFeatures() [][]float64 {
	out := make([][]float64, len(s.Test))
	for i := range s.Test {
		out[i] = s.Test[i].Features
	}
	return out
}

// Accuracy scores predicted classes (in test-split order) against the
// test labels. Prediction slices shorter than the split score only the
// prefix they cover.
func (s *Scenario) Accuracy(classes []int) float64 {
	if len(classes) == 0 {
		return 0
	}
	n := len(classes)
	if n > len(s.Test) {
		n = len(s.Test)
	}
	hits := 0
	for i := 0; i < n; i++ {
		if classes[i] == s.Test[i].Label {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// builders is the scenario registry. Builders run eagerly in Build —
// generating a scenario's data takes milliseconds, and an eagerly built
// value is immutable from then on.
var builders = map[string]func() *Scenario{
	"language": buildLanguage,
	"graphhd":  buildGraphHD,
	"signals":  buildSignals,
}

// Names lists the registered scenarios in stable order.
func Names() []string {
	out := make([]string, 0, len(builders))
	for name := range builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named scenario deterministically.
func Build(name string) (*Scenario, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return b(), nil
}
