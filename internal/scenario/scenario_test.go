package scenario_test

// End-to-end scenario acceptance: every registered scenario is served
// through the real protocol stack — serve.Server behind the v1 handler on
// a loopback HTTP server, driven through the client SDK — and must reach
// its accuracy floor. Ingest goes through the bulk stream (the production
// bulk-load path), prediction through BOTH the unary endpoint and the
// bulk predict stream, and the two must agree row for row: the scenarios
// double as correctness tests for the whole wire.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"hdcirc/client"
	"hdcirc/internal/httpapi"
	"hdcirc/internal/scenario"
	"hdcirc/internal/serve"
)

// serveScenario stands up the production stack for one scenario.
func serveScenario(t *testing.T, sc *scenario.Scenario) *client.Client {
	t.Helper()
	srv, err := serve.NewServer(sc.ServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	api, err := httpapi.New(httpapi.Config{Server: srv, Encoder: sc.Encoder})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	cli, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return cli
}

func TestScenarioRegistry(t *testing.T) {
	names := scenario.Names()
	want := []string{"graphhd", "language", "signals"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if _, err := scenario.Build("no-such-workload"); err == nil {
		t.Error("Build(unknown) did not fail")
	}
}

func TestScenarioDeterministicBuild(t *testing.T) {
	for _, name := range scenario.Names() {
		a, err := scenario.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scenario.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Train) != len(b.Train) || len(a.Test) != len(b.Test) {
			t.Fatalf("%s: split sizes differ across builds", name)
		}
		for i := range a.Train {
			if a.Train[i].Label != b.Train[i].Label {
				t.Fatalf("%s: train labels differ at %d", name, i)
			}
			for j := range a.Train[i].Features {
				if a.Train[i].Features[j] != b.Train[i].Features[j] {
					t.Fatalf("%s: train features differ at %d/%d", name, i, j)
				}
			}
		}
		// The encoders must agree bit for bit on the same record.
		if !a.Encoder.Encode(a.Train[0].Features).Equal(b.Encoder.Encode(b.Train[0].Features)) {
			t.Fatalf("%s: encoders differ across builds", name)
		}
	}
}

func TestScenarioServedAccuracyFloors(t *testing.T) {
	for _, name := range scenario.Names() {
		t.Run(name, func(t *testing.T) {
			sc, err := scenario.Build(name)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Fields() != len(sc.Train[0].Features) {
				t.Fatalf("encoder arity %d but train rows carry %d features", sc.Fields(), len(sc.Train[0].Features))
			}
			cli := serveScenario(t, sc)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			// Bulk ingest of the training split over the stream endpoint.
			is, err := cli.Ingest(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range sc.IngestRows() {
				if err := is.Send(row); err != nil {
					t.Fatal(err)
				}
			}
			summary, err := is.Close()
			if err != nil {
				t.Fatal(err)
			}
			if summary.TotalRows != len(sc.Train) {
				t.Fatalf("ingest applied %d rows, want %d", summary.TotalRows, len(sc.Train))
			}

			// Bulk prediction over the stream endpoint: the accuracy floor.
			results, err := cli.PredictAll(ctx, sc.TestFeatures())
			if err != nil {
				t.Fatal(err)
			}
			classes := make([]int, len(results))
			for i, r := range results {
				classes[i] = r.Class
			}
			acc := sc.Accuracy(classes)
			t.Logf("%s: served accuracy %.3f over %d test rows (floor %.2f)", name, acc, len(sc.Test), sc.AccuracyFloor)
			if acc < sc.AccuracyFloor {
				t.Errorf("served accuracy %.3f below floor %.2f", acc, sc.AccuracyFloor)
			}

			// The unary read plane must agree with the stream row for row.
			for i := 0; i < len(sc.Test) && i < 8; i++ {
				class, dist, err := cli.PredictOne(ctx, sc.Test[i].Features)
				if err != nil {
					t.Fatal(err)
				}
				if class != results[i].Class || dist != results[i].Distance {
					t.Errorf("row %d: unary (%d, %v) != stream (%d, %v)",
						i, class, dist, results[i].Class, results[i].Distance)
				}
			}
		})
	}
}
