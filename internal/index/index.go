// Package index provides sublinear associative lookup over collections of
// binary hypervectors: a bit-sampling sketch index with exact re-ranking.
//
// Every recall path in the reproduction — item-memory cleanup, classifier
// nearest-class, SDM activation — is "scan n vectors for the smallest (or a
// bounded) Hamming distance to a query". The exact scan costs n·d/64 word
// operations; past a few thousand stored vectors it dominates serving
// latency. This package trades a tunable, measurable amount of recall for a
// large constant-factor win by exploiting the concentration of pairwise
// Hamming distances in high dimension (the codeword-spectrum effect): for a
// query correlated with one stored vector and quasi-orthogonal to the rest,
// the distance gap is Θ(d) while the estimation error of an m-bit sample is
// Θ(√m·d/m), so a small signature separates the true neighbor from the bulk
// with overwhelming probability.
//
// The structure is deliberately simple and allocation-conscious:
//
//   - Build: sample m distinct bit positions (deterministically from a
//     seed), extract each stored vector's m-bit signature, pack the
//     signatures into contiguous uint64 words. O(n·m) bit extracts, done
//     once per generation (serving snapshots build one index per published
//     snapshot, so reads stay lock-free).
//
//   - Nearest(q): extract q's signature, compute the n signature distances
//     (m/64-word popcounts — the sublinear pass), select the C candidates
//     with the smallest signature distance via an O(n + m) counting
//     selection, then exactly re-rank only those C with the
//     threshold-pruned kernel bitvec.NearestPruned. No false positives are
//     possible — the winner's reported distance is exact — and the miss
//     probability decays exponentially in m and C.
//
//   - WithinRadius(q, r): screen by signature distance against a
//     conservatively slack-widened scaled radius, then verify every
//     survivor with the capped-popcount kernel bitvec.WithinDistance.
//     Results contain no false positives; false negatives are bounded by
//     the configured slack (RadiusSlack standard deviations). When the
//     screen has no discriminative power (radius near d/2, the sparse-SDM
//     operating point), it detects that and falls back to the exact scan.
//
// Exactness contract: with Candidates >= Len() the candidate set is every
// stored vector in index order, so Nearest is bit-identical to the linear
// scan bitvec.Nearest — including tie resolution to the lowest index. With
// a negative RadiusSlack, WithinRadius is the exact scan. The differential
// tests in index_test.go pin both, and measure recall floors for the
// approximate modes.
package index

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
)

// Config parameterizes an Index. The zero value selects the defaults below
// (it is NOT disabled); set Disabled to opt out of auto-indexing in the
// layers that embed one.
type Config struct {
	// Disabled turns auto-indexing off in consumers (ItemMemory,
	// Classifier, serve snapshots); they fall back to the exact linear
	// scan regardless of size.
	Disabled bool
	// SignatureBits is m, the number of sampled bit positions per stored
	// vector; <= 0 selects 256. Larger m sharpens the sketch estimate
	// (recall) and slows the candidate pass; m >= d degenerates to a full
	// permuted copy and is clamped to d at build time.
	SignatureBits int
	// Candidates is C, the number of sketch candidates re-ranked exactly;
	// <= 0 selects max(64, n/32). C >= n makes Nearest bit-identical to
	// the exact linear scan.
	Candidates int
	// MinSize is the collection size below which consumers keep the plain
	// linear scan (the sketch pass only pays for itself past a few
	// thousand vectors); <= 0 selects 2048.
	MinSize int
	// Seed derives the sampled bit positions. Equal (Seed, SignatureBits,
	// dimension) always sample the same positions, so index builds are
	// reproducible.
	Seed uint64
	// RadiusSlack widens the WithinRadius signature screen by this many
	// standard deviations of the signature-distance estimator. Zero
	// selects the default 5 — conservatively near-lossless; each unit of
	// slack cuts the false-negative tail by roughly an order of
	// magnitude. A NEGATIVE value disables screening entirely (exact
	// radius scan).
	RadiusSlack float64
}

// DefaultConfig returns the default index configuration: 256-bit
// signatures, auto candidate count, auto-enable at 2048 vectors, radius
// slack 5.
func DefaultConfig() Config {
	return Config{SignatureBits: 256, MinSize: 2048, RadiusSlack: 5}
}

// normalized fills zero fields with defaults.
func (c Config) normalized() Config {
	if c.SignatureBits <= 0 {
		c.SignatureBits = 256
	}
	if c.MinSize <= 0 {
		c.MinSize = 2048
	}
	if c.RadiusSlack == 0 {
		c.RadiusSlack = 5
	}
	return c
}

// Enabled reports whether a collection of n vectors should be indexed
// under this configuration: not disabled and at least MinSize (after
// defaulting) vectors.
func (c Config) Enabled(n int) bool {
	return !c.Disabled && n >= c.normalized().MinSize
}

// MaxTail is how many un-indexed vectors may accumulate behind an index of
// the given size before a consumer should rebuild rather than serve the
// tail with an exact pruned scan: an eighth of the indexed prefix, at
// least 64. Below this the tail scan stays cheap relative to the indexed
// prefix, and steady add/lookup interleavings amortize rebuild cost.
func MaxTail(indexed int) int {
	if s := indexed / 8; s > 64 {
		return s
	}
	return 64
}

// Index is a bit-sampling sketch index over a fixed slice of vectors. It
// shares (does not copy) the indexed vectors; they must not be mutated for
// the index's lifetime. All methods are pure reads after New, safe for any
// number of concurrent goroutines.
type Index struct {
	d          int
	m          int   // signature bits
	candidates int   // resolved C
	positions  []int // sampled bit positions, ascending
	sigWords   int   // words per signature
	sigs       []uint64
	vecs       []*bitvec.Vector
	slack      float64
}

// New builds an index over vs with the given configuration. It panics on an
// empty collection or mismatched dimensions — indexing nothing is a
// programming error, and the consumers all gate on MinSize first.
func New(vs []*bitvec.Vector, cfg Config) *Index {
	if len(vs) == 0 {
		panic("index: cannot index zero vectors")
	}
	cfg = cfg.normalized()
	d := vs[0].Dim()
	m := cfg.SignatureBits
	if m > d {
		m = d
	}
	c := cfg.Candidates
	if c <= 0 {
		c = len(vs) / 32
		if c < 64 {
			c = 64
		}
	}
	if c > len(vs) {
		c = len(vs)
	}
	ix := &Index{
		d:          d,
		m:          m,
		candidates: c,
		positions:  samplePositions(d, m, cfg.Seed),
		sigWords:   (m + 63) / 64,
		vecs:       vs,
		slack:      cfg.RadiusSlack,
	}
	ix.sigs = make([]uint64, len(vs)*ix.sigWords)
	for i, v := range vs {
		if v.Dim() != d {
			panic(fmt.Sprintf("index: vector %d has dimension %d, index %d", i, v.Dim(), d))
		}
		ix.signatureInto(v, ix.sigs[i*ix.sigWords:(i+1)*ix.sigWords])
	}
	return ix
}

// samplePositions draws m distinct positions from [0, d) via Floyd's
// algorithm on a named substream and returns them ascending (sequential
// word access when extracting signatures, and a canonical order for
// reproducibility).
func samplePositions(d, m int, seed uint64) []int {
	src := rng.Sub(seed, "index/positions")
	taken := make(map[int]struct{}, m)
	out := make([]int, 0, m)
	for i := d - m; i < d; i++ {
		j := src.Intn(i + 1)
		if _, dup := taken[j]; dup {
			j = i
		}
		taken[j] = struct{}{}
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// signatureInto extracts the sampled bits of v into dst (sigWords words).
func (ix *Index) signatureInto(v *bitvec.Vector, dst []uint64) {
	words := v.Words()
	for w := range dst {
		dst[w] = 0
	}
	for j, p := range ix.positions {
		bit := words[p>>6] >> (uint(p) & 63) & 1
		dst[j>>6] |= bit << (uint(j) & 63)
	}
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.vecs) }

// Dim returns the indexed hypervector dimension.
func (ix *Index) Dim() int { return ix.d }

// SignatureBits returns the resolved signature width m.
func (ix *Index) SignatureBits() int { return ix.m }

// Candidates returns the resolved exact-re-rank candidate count C.
func (ix *Index) Candidates() int { return ix.candidates }

// Exact reports whether Nearest is bit-identical to the linear scan
// (C == n).
func (ix *Index) Exact() bool { return ix.candidates >= len(ix.vecs) }

// Nearest returns the index and exact Hamming distance of the
// (approximate) nearest stored vector: candidate generation by signature
// distance, exact re-rank of the top C candidates with the pruned kernel.
// Ties — in signature distance during selection and in exact distance
// during re-rank — resolve toward the lowest index, so exact mode (C == n)
// reproduces bitvec.Nearest bit for bit.
func (ix *Index) Nearest(q *bitvec.Vector) (idx, hd int) {
	if q.Dim() != ix.d {
		panic(fmt.Sprintf("index: query dimension %d, index %d", q.Dim(), ix.d))
	}
	n := len(ix.vecs)
	sw := ix.sigWords
	qsig := make([]uint64, sw)
	ix.signatureInto(q, qsig)

	// Signature-distance pass: the sublinear bulk of the work, m/64 words
	// per stored vector instead of d/64. int32 holds any signature
	// distance (m is clamped to d, and dimensions are ints).
	ds := make([]int32, n)
	hist := make([]int, ix.m+1)
	for i := 0; i < n; i++ {
		base := i * sw
		sd := 0
		for w := 0; w < sw; w++ {
			sd += bits.OnesCount64(qsig[w] ^ ix.sigs[base+w])
		}
		ds[i] = int32(sd)
		hist[sd]++
	}

	// Counting selection of the C smallest signature distances: find the
	// threshold t such that everything strictly below t is in, and fill
	// the remaining quota with distance-t candidates in index order.
	c := ix.candidates
	cum, t := 0, 0
	for t <= ix.m && cum+hist[t] <= c {
		cum += hist[t]
		t++
	}
	quota := c - cum // how many distance-t candidates still fit

	// Exact re-rank, ascending index order so distance ties resolve low.
	best, bestIdx := ix.d+1, -1
	for i := 0; i < n; i++ {
		sd := int(ds[i])
		if sd > t || (sd == t && quota == 0) {
			continue
		}
		if sd == t {
			quota--
		}
		if nhd, within := bitvec.DistanceBounded(q, ix.vecs[i], best-1); within && nhd < best {
			best, bestIdx = nhd, i
		}
	}
	return bestIdx, best
}

// radiusThreshold returns the signature screen threshold for full-distance
// radius r: the expected signature distance of a vector AT the radius plus
// slack standard deviations of the Binomial(m, r/d) estimator, and whether
// the screen has any discriminative power at all (a threshold at or past
// the quasi-orthogonal bulk mean m/2 keeps essentially every stored vector,
// so screening would only add overhead).
func (ix *Index) radiusThreshold(r int) (t int, useful bool) {
	if ix.slack <= 0 {
		return ix.m, false
	}
	p := float64(r) / float64(ix.d)
	if p >= 1 {
		return ix.m, false
	}
	mean := float64(ix.m) * p
	sd := math.Sqrt(float64(ix.m) * p * (1 - p))
	t = int(math.Ceil(mean + ix.slack*sd))
	if t >= ix.m {
		t = ix.m
	}
	return t, float64(t) < float64(ix.m)/2
}

// WithinRadius appends to out the indexes of every stored vector within
// Hamming radius r of q (ascending, no false positives) and returns out.
// Vectors whose signature distance exceeds the slack-widened scaled radius
// are screened out before the exact check; with the default slack the
// per-vector miss probability at the radius boundary is below 1e-6, and
// vectors well inside the radius are safer still. When the screen cannot
// separate the radius from the quasi-orthogonal bulk (r near d/2 or
// RadiusSlack <= 0) the scan is exact.
func (ix *Index) WithinRadius(q *bitvec.Vector, r int, out []int) []int {
	if q.Dim() != ix.d {
		panic(fmt.Sprintf("index: query dimension %d, index %d", q.Dim(), ix.d))
	}
	t, useful := ix.radiusThreshold(r)
	if !useful {
		for i, v := range ix.vecs {
			if bitvec.WithinDistance(v, q, r) {
				out = append(out, i)
			}
		}
		return out
	}
	sw := ix.sigWords
	qsig := make([]uint64, sw)
	ix.signatureInto(q, qsig)
	for i, v := range ix.vecs {
		base := i * sw
		sd := 0
		for w := 0; w < sw; w++ {
			sd += bits.OnesCount64(qsig[w] ^ ix.sigs[base+w])
		}
		if sd > t {
			continue
		}
		if bitvec.WithinDistance(v, q, r) {
			out = append(out, i)
		}
	}
	return out
}
