package index

import (
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
)

func randomVecs(n, d int, seed uint64) []*bitvec.Vector {
	src := rng.Sub(seed, "index-test/vecs")
	vs := make([]*bitvec.Vector, n)
	for i := range vs {
		vs[i] = bitvec.Random(d, src)
	}
	return vs
}

// noisy returns a copy of v with a fraction rho of positions flipped
// (each position independently, so the flip count is Binomial(d, rho)).
func noisy(v *bitvec.Vector, rho float64, src *rng.Stream) *bitvec.Vector {
	out := v.Clone()
	for i := 0; i < v.Dim(); i++ {
		if src.Float64() < rho {
			out.FlipBit(i)
		}
	}
	return out
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.normalized()
	if c.SignatureBits != 256 || c.MinSize != 2048 || c.RadiusSlack != 5 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if !(Config{}).Enabled(2048) {
		t.Fatal("zero config should enable at MinSize")
	}
	if (Config{}).Enabled(2047) {
		t.Fatal("zero config should not enable below MinSize")
	}
	if (Config{Disabled: true}).Enabled(1 << 20) {
		t.Fatal("disabled config must never enable")
	}
}

func TestExactModeBitIdenticalToLinearScan(t *testing.T) {
	for _, d := range []int{100, 1000, 10007} {
		vs := randomVecs(500, d, uint64(d))
		ix := New(vs, Config{Candidates: len(vs), SignatureBits: 128, Seed: 3})
		if !ix.Exact() {
			t.Fatal("C == n should report exact")
		}
		src := rng.Sub(99, "exact-query")
		for trial := 0; trial < 50; trial++ {
			var q *bitvec.Vector
			if trial%2 == 0 {
				q = bitvec.Random(d, src)
			} else {
				q = noisy(vs[trial%len(vs)], 0.3, src)
			}
			wi, wh := bitvec.Nearest(q, vs)
			gi, gh := ix.Nearest(q)
			if gi != wi || gh != wh {
				t.Fatalf("d=%d trial=%d: index (%d,%d), linear (%d,%d)", d, trial, gi, gh, wi, wh)
			}
		}
	}
}

func TestExactModeTieResolution(t *testing.T) {
	// Two stored vectors at the same distance from the query: the linear
	// scan picks the lower index, and exact mode must do the same even
	// though their SIGNATURE distances differ.
	d := 640
	base := bitvec.Random(d, rng.Sub(5, "tie"))
	a := base.Clone()
	a.FlipBit(1) // sampled positions may or may not include these
	b := base.Clone()
	b.FlipBit(d - 2)
	vs := []*bitvec.Vector{a, b}
	ix := New(vs, Config{Candidates: 2, Seed: 11})
	if idx, hd := ix.Nearest(base); idx != 0 || hd != 1 {
		t.Fatalf("tie: got (%d,%d), want (0,1)", idx, hd)
	}
}

func TestApproximateRecallFloor(t *testing.T) {
	// The acceptance scenario: random item memory, noisy probes of stored
	// items, recall of the true nearest neighbor >= 0.99.
	const (
		n, d    = 4000, 4096
		queries = 400
		rho     = 0.3
	)
	vs := randomVecs(n, d, 42)
	ix := New(vs, Config{Seed: 7})
	if ix.Exact() {
		t.Fatalf("fixture not approximate: C=%d n=%d", ix.Candidates(), n)
	}
	src := rng.Sub(1234, "recall-queries")
	hits := 0
	for i := 0; i < queries; i++ {
		target := i % n
		q := noisy(vs[target], rho, src)
		wi, wh := bitvec.Nearest(q, vs)
		gi, gh := ix.Nearest(q)
		if gi == wi {
			hits++
			if gh != wh {
				t.Fatalf("query %d: right index %d but distance %d != exact %d", i, gi, gh, wh)
			}
		}
	}
	recall := float64(hits) / queries
	if recall < 0.99 {
		t.Fatalf("recall %.4f below 0.99 floor (%d/%d)", recall, hits, queries)
	}
}

func TestApproximateDistanceIsAlwaysExactForReturnedIndex(t *testing.T) {
	// Even when the index returns a non-optimal neighbor, the reported
	// distance must be that vector's true exact distance (no sketch
	// estimates leak out).
	vs := randomVecs(300, 512, 8)
	ix := New(vs, Config{Candidates: 4, SignatureBits: 64, Seed: 2})
	src := rng.Sub(77, "exact-dist")
	for i := 0; i < 100; i++ {
		q := bitvec.Random(512, src)
		idx, hd := ix.Nearest(q)
		if want := q.HammingDistance(vs[idx]); hd != want {
			t.Fatalf("returned distance %d, true distance %d", hd, want)
		}
	}
}

func TestWithinRadiusNoFalsePositivesAndHighRecall(t *testing.T) {
	const n, d = 2000, 2048
	vs := randomVecs(n, d, 17)
	ix := New(vs, Config{Seed: 5})
	src := rng.Sub(55, "radius-queries")
	r := d / 5 // well below d/2: the screen regime
	if t2, useful := ix.radiusThreshold(r); !useful {
		t.Fatalf("screen should be useful at r=%d (t=%d)", r, t2)
	}
	missed, total := 0, 0
	for i := 0; i < 100; i++ {
		q := noisy(vs[i%n], 0.1, src)
		var want []int
		for j, v := range vs {
			if bitvec.WithinDistance(v, q, r) {
				want = append(want, j)
			}
		}
		got := ix.WithinRadius(q, r, nil)
		// No false positives, ascending order.
		gotSet := make(map[int]bool, len(got))
		prev := -1
		for _, g := range got {
			if g <= prev {
				t.Fatalf("results not ascending: %v", got)
			}
			prev = g
			if !bitvec.WithinDistance(vs[g], q, r) {
				t.Fatalf("false positive index %d", g)
			}
			gotSet[g] = true
		}
		for _, w := range want {
			total++
			if !gotSet[w] {
				missed++
			}
		}
	}
	if total == 0 {
		t.Fatal("fixture produced no in-radius pairs")
	}
	if recall := 1 - float64(missed)/float64(total); recall < 0.999 {
		t.Fatalf("radius recall %.5f below floor (missed %d/%d)", recall, missed, total)
	}
}

func TestWithinRadiusExactFallbacks(t *testing.T) {
	const n, d = 200, 1000
	vs := randomVecs(n, d, 23)
	src := rng.Sub(66, "fallback")
	q := bitvec.Random(d, src)
	exact := func(ix *Index, r int) {
		t.Helper()
		var want []int
		for j, v := range vs {
			if bitvec.WithinDistance(v, q, r) {
				want = append(want, j)
			}
		}
		got := ix.WithinRadius(q, r, nil)
		if len(got) != len(want) {
			t.Fatalf("r=%d: got %d results, want %d", r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("r=%d: result %d is %d, want %d", r, i, got[i], want[i])
			}
		}
	}
	// Slack <= 0 disables the screen entirely.
	exact(New(vs, Config{RadiusSlack: -1}), d/5)
	// A radius near d/2 has no screening power; must auto-fall back.
	ix := New(vs, Config{Seed: 9})
	if _, useful := ix.radiusThreshold(d/2 - 10); useful {
		t.Fatal("screen should be useless near d/2")
	}
	exact(ix, d/2-10)
	// r >= d activates everything.
	if got := ix.WithinRadius(q, d, nil); len(got) != n {
		t.Fatalf("r=d: got %d results, want all %d", len(got), n)
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted zero vectors")
		}
	}()
	New(nil, Config{})
}

func TestMismatchedDimensionsPanic(t *testing.T) {
	vs := []*bitvec.Vector{bitvec.New(64), bitvec.New(128)}
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted mismatched dimensions")
		}
	}()
	New(vs, Config{})
}

func TestSignatureWiderThanDimensionClamps(t *testing.T) {
	vs := randomVecs(10, 50, 3)
	ix := New(vs, Config{SignatureBits: 4096, Candidates: 10})
	if ix.SignatureBits() != 50 {
		t.Fatalf("m=%d, want clamp to d=50", ix.SignatureBits())
	}
	q := noisy(vs[3], 0.1, rng.Sub(1, "clamp"))
	wi, wh := bitvec.Nearest(q, vs)
	if gi, gh := ix.Nearest(q); gi != wi || gh != wh {
		t.Fatalf("clamped index diverged: (%d,%d) vs (%d,%d)", gi, gh, wi, wh)
	}
}

func TestBuildDeterministic(t *testing.T) {
	vs := randomVecs(100, 500, 12)
	a := New(vs, Config{Seed: 4, Candidates: 8})
	b := New(vs, Config{Seed: 4, Candidates: 8})
	q := bitvec.Random(500, rng.Sub(2, "det"))
	ai, ah := a.Nearest(q)
	bi, bh := b.Nearest(q)
	if ai != bi || ah != bh {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", ai, ah, bi, bh)
	}
	for i, p := range a.positions {
		if b.positions[i] != p {
			t.Fatal("sampled positions differ across identical builds")
		}
	}
}
