package hdcirc

import "hdcirc/internal/sdm"

// SDM is Kanerva's Sparse Distributed Memory — the associative cleanup
// memory underlying HDC's quasi-orthogonality theory (the paper's reference
// [18]). Write hypervectors in; read denoised hypervectors back, optionally
// iterating to a fixed point.
type SDM = sdm.Memory

// SDMConfig parameterizes a sparse distributed memory.
type SDMConfig = sdm.Config

// NewSDM creates a sparse distributed memory.
func NewSDM(cfg SDMConfig) *SDM { return sdm.New(cfg) }

// DefaultSDMConfig returns a textbook operating point for dimension d.
func DefaultSDMConfig(d int) SDMConfig { return sdm.DefaultConfig(d) }
