package hdcirc

// Benchmarks for the extension substrates: SDM recall, hardware cost
// evaluation, the thermometer baseline, rotation fast path and weighted
// decoding, plus the extension experiments.

import (
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/experiments"
	"hdcirc/internal/hwcost"
	"hdcirc/internal/rng"
	"hdcirc/internal/sdm"
)

func BenchmarkGenerateThermometer(b *testing.B) { benchGenerate(b, core.KindThermometer) }

func BenchmarkRotateFastPath(b *testing.B) {
	r := rng.New(30)
	v := bitvec.Random(benchDim-benchDim%64, r) // multiple of 64 → fast path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Rotate(1337)
	}
}

func BenchmarkRotateBitLoop(b *testing.B) {
	r := rng.New(31)
	v := bitvec.Random(benchDim-benchDim%64, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.RotateBits(1337)
	}
}

func BenchmarkSDMWrite(b *testing.B) {
	m := sdm.New(sdm.DefaultConfig(1024))
	r := rng.New(32)
	v := bitvec.Random(1024, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Write(v, v)
	}
}

func BenchmarkSDMReadIterative(b *testing.B) {
	m := sdm.New(sdm.DefaultConfig(1024))
	r := rng.New(33)
	items := make([]*bitvec.Vector, 8)
	for i := range items {
		items[i] = bitvec.Random(1024, r)
		m.Write(items[i], items[i])
	}
	cue := items[3].Clone()
	for i := 0; i < 100; i++ {
		cue.FlipBit(r.Intn(1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := m.ReadIterative(cue, 6); !ok {
			b.Fatal("no activations")
		}
	}
}

func BenchmarkDecodeNearest(b *testing.B) {
	s := rng.New(34)
	enc := NewScalarEncoder(core.LevelSet(128, benchDim, s), 0, 127)
	q := enc.Encode(63)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.Decode(q)
	}
}

func BenchmarkDecodeWeighted(b *testing.B) {
	s := rng.New(35)
	enc := NewScalarEncoder(core.LevelSet(128, benchDim, s), 0, 127)
	q := enc.Encode(63)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.DecodeWeighted(q, 5)
	}
}

// BenchmarkAblationDecoder regenerates the decoder ablation and reports the
// weighted decode's relative MSE on both regression datasets.
func BenchmarkAblationDecoder(b *testing.B) {
	cfg := benchTable2Config()
	var rows []experiments.DecoderAblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunDecoderAblation(cfg)
	}
	for _, r := range rows {
		b.ReportMetric(r.WeightedMSE/r.NearestMSE, "rel-"+r.Dataset[:4])
	}
}

// BenchmarkExtensionEMG runs the EMG pipeline and reports accuracy.
func BenchmarkExtensionEMG(b *testing.B) {
	cfg := experiments.DefaultEMGExperiment()
	cfg.D = 4096
	cfg.DataConfig.TrainPerGesture = 10
	cfg.DataConfig.TestPerGesture = 8
	var res experiments.ClassificationResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunEMG(cfg)
	}
	b.ReportMetric(100*res.Accuracy, "acc-%")
}

// BenchmarkExtensionText runs the language-id pipeline and reports
// accuracy.
func BenchmarkExtensionText(b *testing.B) {
	cfg := experiments.DefaultTextExperiment()
	cfg.D = 4096
	cfg.DataConfig.TrainPerLang = 15
	cfg.DataConfig.TestPerLang = 10
	var res experiments.ClassificationResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunText(cfg)
	}
	b.ReportMetric(100*res.Accuracy, "acc-%")
}

// BenchmarkCostModel evaluates the analytic cost model itself (it should be
// effectively free) and reports inference energy for the gesture pipeline.
func BenchmarkCostModel(b *testing.B) {
	w := hwcost.Workload{
		Name: "gesture",
		Pipeline: hwcost.PipelineConfig{
			D: benchDim, Fields: 18, Classes: 15, BasisM: 24,
		},
		Train: 600, Test: 375,
	}
	e := hwcost.Default45nm()
	var rep hwcost.Report
	for i := 0; i < b.N; i++ {
		rep = hwcost.Cost(w, e)
	}
	b.ReportMetric(rep.InferEnergyUJ, "infer-µJ")
}

func BenchmarkHashRingLookup(b *testing.B) {
	ring, err := NewHashRing(64, benchDim, 36)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []string{"a", "b", "c", "d", "e"} {
		if _, err := ring.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ring.Lookup("key-42"); !ok {
			b.Fatal("lookup failed")
		}
	}
}
